"""Strategy arena — strategy mixes × mobile fraction × wP2P (``figx_arena``).

Not a figure from the paper: the tournament the paper could not run.
Its incentive results (fig3, and wP2P's identity retention) assume
every peer plays the reference tit-for-tat client; the arena drops
free-riders and BitTyrant-style exploiters (:mod:`repro.strategy`)
into the same small swarms the paper measures — with and without
mobile hosts, under the deployed-client default and under wP2P — and
reports per-strategy completion time, goodput and upload contributed.

Each cell is one swarm: one seed with scarce upload capacity (so
peer-to-peer reciprocation, not seed charity, dominates service) plus
``leechers`` leechers whose strategies follow the named mix
(deterministic largest-deficit assignment via
:class:`~repro.strategy.MixAssigner`).  Exploiters stay wired;
``mobile_fraction`` of the *compliant* leechers sit behind a shared
wireless cell with periodic IP handoffs — the population the paper
shows is most fragile, and the one the exploiters get to prey on.
The ``wp2p`` variant gives those mobile hosts identity retention +
role reversal (IA), so their tit-for-tat credit survives handoffs no
matter which choking policy their neighbours run.

Expectations: in all-wired swarms the free-rider pays — it finishes
slower than the compliant peers it leeches from (tit-for-tat working
as designed); as the mobile-host fraction rises the penalty shrinks
(mobility churn resets reciprocation state, so incentives are
neutralised — the arena restatement of §3.4); the robust ``propshare``
choker taxes the tyrant, whose service becomes proportional to its
deliberately minimal contribution (it must upload more, and its
download-per-upload efficiency falls); and wP2P identity retention
speeds the compliant mobile peers.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence

from ..analysis import ExperimentResult, Series
from ..bittorrent import ClientConfig
from ..bittorrent.swarm import SwarmScenario
from ..runner import Scenario, collect, run_scenario, scenario
from ..strategy import MixAssigner, get_strategy
from ..wp2p import WP2PClient, WP2PConfig
from .base import random_piece_subset

#: The named tournament brackets.  Fractions are over the leecher
#: population; the remainder runs the listed compliant strategy.
ARENA_MIXES: Dict[str, Dict[str, float]] = {
    "clean":             {"reference": 1.0},
    "freeriders":        {"reference": 0.75, "freerider": 0.25},
    "tyrants":           {"reference": 0.75, "tyrant": 0.25},
    "robust-freeriders": {"propshare": 0.75, "freerider": 0.25},
    "robust-tyrants":    {"propshare": 0.75, "tyrant": 0.25},
}

#: Strategies counted as exploiters when splitting arena populations.
EXPLOITERS = ("freerider", "tyrant")


def _mobile_flags(compliant: int, mobile_fraction: float) -> List[bool]:
    """Evenly-spread mobility flags over the compliant leechers."""
    quota = round(compliant * mobile_fraction)
    return [
        (i + 1) * quota // compliant > i * quota // compliant
        for i in range(compliant)
    ]


def arena_run(
    seed: int,
    weights: Mapping[str, float],
    mobile_fraction: float,
    wp2p: bool,
    p: Mapping[str, object],
) -> Dict[str, object]:
    """One tournament cell: a mixed-strategy swarm, per-peer outcomes.

    Uses fig3a's reciprocation-dominated setup: every leecher starts
    with a random half of the pieces and offers a single ranked unchoke
    slot, so what a peer is missing lives at its competitors and service
    must be earned by uploading.  (A fresh-start swarm is
    availability-limited instead — everyone crawls at the seed's piece
    injection rate and no choking policy can differentiate peers.)  A
    slow backfill seed keeps the few pieces no leecher drew reachable
    without handing out meaningful free capacity.
    """
    duration = float(p["duration"])
    sc = SwarmScenario(
        seed=seed,
        file_size=int(p["file_size_kib"]) * 1024,
        piece_length=int(p["piece_length"]),
        tracker_interval=60.0,
    )
    piece_rng = random.Random(seed * 977 + 13)
    n_pieces = sc.torrent.num_pieces
    # Leechers leave when done (keep_seeding=False): exploiters must be
    # served while reciprocation still matters, not by post-completion
    # charity — finished reference peers turning into free seeds would
    # wash the tit-for-tat penalty out of the completion times.
    choking = dict(
        unchoke_slots=int(p["unchoke_slots"]),
        optimistic_every=int(p["optimistic_every"]),
        choke_interval=float(p["choke_interval"]),
        keep_seeding=False,
    )
    # The backfill seed drips across a couple of slots; seeds rank by
    # receive rate, not reciprocity, so a fat seed would mask the
    # incentive signal the arena exists to measure.
    sc.add_wired_peer(
        "seed0", complete=True,
        down_rate=1_000_000, up_rate=float(p["seed_up_rate"]),
        config=ClientConfig(
            unchoke_slots=int(p["seed_slots"]),
            choke_interval=float(p["choke_interval"]),
        ),
    )

    leechers = int(p["leechers"])
    assigner = MixAssigner({"all": dict(weights)})
    order = [assigner.assign("all") for _ in range(leechers)]
    for name in set(order):
        get_strategy(name)  # unknown names fail before any peer is built
    # Decorrelate strategy from arrival order: the tracker hands small
    # swarms its join-order peer list, and zero-rank ties resolve in list
    # order, so the earliest-joined leechers hold a standing claim on
    # spare unchoke slots.  The assigner's quota walk is deterministic —
    # without a shuffle the same strategy would sit in the favoured slot
    # in every cell of the sweep.
    piece_rng.shuffle(order)

    compliant = [i for i, s in enumerate(order) if s not in EXPLOITERS]
    flags = _mobile_flags(len(compliant), mobile_fraction) if compliant else []
    mobile = {idx for idx, flag in zip(compliant, flags) if flag}

    peers: List[Dict[str, object]] = []
    for i, strategy in enumerate(order):
        name = f"l{i}"
        have = random_piece_subset(
            piece_rng, n_pieces, float(p["initial_fraction"])
        )
        if i in mobile:
            if wp2p:
                handle = sc.add_wireless_peer(
                    name, rate=float(p["wireless_rate"]),
                    config=WP2PConfig(
                        am_enabled=False, mobility_aware_fetching=False,
                        identity_retention=True, role_reversal=True,
                        **choking,
                    ),
                    client_factory=WP2PClient, strategy=strategy,
                    initial_pieces=have,
                )
            else:
                handle = sc.add_wireless_peer(
                    name, rate=float(p["wireless_rate"]),
                    config=ClientConfig(
                        task_restart_delay=float(p["restart_delay"]),
                        **choking,
                    ),
                    strategy=strategy, initial_pieces=have,
                )
            sc.add_mobility(
                handle, interval=float(p["handoff_interval"]),
                downtime=float(p["handoff_downtime"]),
            )
        else:
            sc.add_wired_peer(
                name, down_rate=float(p["wired_down_rate"]),
                up_rate=float(p["wired_up_rate"]),
                config=ClientConfig(**choking), strategy=strategy,
                initial_pieces=have,
            )
        peers.append({"name": name, "strategy": strategy, "mobile": i in mobile})

    sc.start_all()
    sc.run_until_complete(
        names=[str(peer["name"]) for peer in peers], timeout=duration
    )

    for peer in peers:
        client = sc.peers[str(peer["name"])].client
        completion = client.completion_time
        peer["completion"] = completion if completion is not None else duration
        peer["finished"] = completion is not None
        peer["goodput"] = (
            client.downloaded.total / peer["completion"]
            if peer["completion"] > 0 else 0.0
        )
        peer["uploaded"] = float(client.uploaded.total)
        peer["downloaded"] = float(client.downloaded.total)
    return {"peers": peers, "events": sc.sim.events_processed}


def _group(peers: Sequence[Mapping[str, object]], field: str) -> Optional[float]:
    values = [float(peer[field]) for peer in peers]
    return sum(values) / len(values) if values else None


@scenario
class FigXArena(Scenario):
    """Tournament sweep: strategy mixes × mobile fraction × default/wP2P."""

    name = "figx_arena"
    description = (
        "Strategy arena: free-riders and BitTyrant-style exploiters vs "
        "reference and robust (propshare) compliance, across mobile-host "
        "fractions, default vs wP2P clients"
    )
    defaults = {
        "mixes": list(ARENA_MIXES),
        "mobile_fractions": [0.0, 0.5],
        "runs": 3,
        "leechers": 10,
        "seed_up_rate": 16_000.0,
        "seed_slots": 2,
        "wired_up_rate": 56_000.0,
        "wired_down_rate": 500_000.0,
        "wireless_rate": 160_000.0,
        "handoff_interval": 60.0,
        "handoff_downtime": 1.0,
        "restart_delay": 5.0,
        "initial_fraction": 0.5,
        "unchoke_slots": 2,
        "optimistic_every": 3,
        "choke_interval": 5.0,
        "file_size_kib": 32_768,
        "piece_length": 32_768,
        "duration": 1800.0,
        "base_seed": 1700,
    }

    def cells(self, p):
        for mix_name in p["mixes"]:
            if mix_name not in ARENA_MIXES:
                raise ValueError(
                    f"unknown arena mix {mix_name!r}; "
                    f"choose from {', '.join(ARENA_MIXES)}"
                )
            for fraction in p["mobile_fractions"]:
                for variant in ("default", "wp2p"):
                    if variant == "wp2p" and fraction == 0.0:
                        # No mobile hosts -> the variants are identical.
                        continue
                    for r in range(p["runs"]):
                        yield (mix_name, fraction, variant), p["base_seed"] + r

    def run_cell(self, key, seed, p):
        mix_name, fraction, variant = key
        return arena_run(
            seed, ARENA_MIXES[str(mix_name)], float(fraction),
            wp2p=(variant == "wp2p"), p=dict(p),
        )

    def assemble(self, p, values, failures):
        mixes = [str(m) for m in p["mixes"]]
        fractions = [float(f) for f in p["mobile_fractions"]]
        duration = float(p["duration"])

        def cell_peers(mix: str, fraction: float, variant: str):
            lookup = variant if fraction > 0.0 else "default"
            peers: List[Mapping[str, object]] = []
            for value in collect(values, (mix, fraction, lookup)):
                peers.extend(value["peers"])
            return peers

        # Per-strategy outcome table for every (mix, fraction, variant).
        per_strategy: Dict[str, Dict[str, object]] = {}
        total_events = 0.0
        for mix in mixes:
            for fraction in fractions:
                for variant in ("default", "wp2p"):
                    if variant == "wp2p" and fraction == 0.0:
                        continue
                    peers = cell_peers(mix, fraction, variant)
                    if not peers:
                        continue
                    groups: Dict[str, Dict[str, object]] = {}
                    names = sorted({str(peer["strategy"]) for peer in peers})
                    for strategy in names:
                        members = [
                            peer for peer in peers
                            if peer["strategy"] == strategy
                        ]
                        groups[strategy] = {
                            "peers": len(members),
                            "completion": _group(members, "completion"),
                            "goodput": _group(members, "goodput"),
                            "uploaded": _group(members, "uploaded"),
                            "downloaded": _group(members, "downloaded"),
                            "finished": sum(
                                1 for m in members if m["finished"]
                            ),
                        }
                    mobile_members = [peer for peer in peers if peer["mobile"]]
                    if mobile_members:
                        groups["(mobile)"] = {
                            "peers": len(mobile_members),
                            "completion": _group(mobile_members, "completion"),
                            "goodput": _group(mobile_members, "goodput"),
                            "uploaded": _group(mobile_members, "uploaded"),
                            "downloaded": _group(mobile_members, "downloaded"),
                            "finished": sum(
                                1 for m in mobile_members if m["finished"]
                            ),
                        }
                    per_strategy[f"{mix}/{fraction:g}/{variant}"] = groups
        for value in values.values():
            total_events += float(value["events"])

        def slowdown(mix: str, fraction: float, variant: str) -> Optional[float]:
            """Exploiter mean completion over compliant mean completion.

            > 1: the exploiter is penalized (finishes slower than the
            compliant peers it leeches from); < 1: exploitation pays.
            """
            peers = cell_peers(mix, fraction, variant)
            exploiters = [
                peer for peer in peers if peer["strategy"] in EXPLOITERS
            ]
            compliant = [
                peer for peer in peers if peer["strategy"] not in EXPLOITERS
            ]
            top = _group(exploiters, "completion")
            bottom = _group(compliant, "completion")
            if top is None or bottom is None or bottom == 0:
                return None
            return top / bottom

        # Headline checks (computed on the least-mobile default cells):
        # the tit-for-tat free-rider penalty, and the robust choker's
        # toll on the tyrant's download-per-upload efficiency.
        base_fraction = min(fractions) if fractions else 0.0

        def efficiency(mix: str) -> Optional[float]:
            tyrants = [
                peer for peer in cell_peers(mix, base_fraction, "default")
                if peer["strategy"] == "tyrant"
            ]
            down = sum(float(peer["downloaded"]) for peer in tyrants)
            up = sum(float(peer["uploaded"]) for peer in tyrants)
            return down / up if up > 0 else None

        freerider_penalty = (
            slowdown("freeriders", base_fraction, "default")
            if "freeriders" in mixes else None
        )
        tyrant_efficiency = {
            label: efficiency(mix)
            for label, mix in (
                ("reference", "tyrants"), ("robust", "robust-tyrants"),
            )
            if mix in mixes
        }

        series = []
        for mix in mixes:
            if mix == "clean":
                continue
            for variant in ("default", "wp2p"):
                xs, ys = [], []
                for fraction in fractions:
                    if variant == "wp2p" and fraction == 0.0:
                        continue
                    ratio = slowdown(mix, fraction, variant)
                    if ratio is not None:
                        xs.append(fraction)
                        ys.append(ratio)
                if xs:
                    series.append(Series(f"{mix} [{variant}]", xs, ys))

        return ExperimentResult(
            figure="Strategy arena",
            title="Exploiter-vs-compliant completion ratio across mixes",
            x_label="Mobile-host fraction (of compliant leechers)",
            y_label="Exploiter slowdown (completion ratio, >1 = penalized)",
            series=series,
            paper_expectation=(
                "free-riders finish slower than the reference peers they "
                "leech from (tit-for-tat penalty, ratio > 1) in all-wired "
                "swarms; the penalty shrinks as the mobile-host fraction "
                "rises (mobility neutralises incentives, §3.4); the "
                "propshare robust choker taxes the tyrant's "
                "download-per-upload efficiency; wP2P identity retention "
                "speeds the compliant mobile peers"
            ),
            notes=(
                "per_strategy maps mix/mobile-fraction/variant to each "
                "strategy's mean completion, goodput and bytes "
                "uploaded/downloaded ('(mobile)' aggregates the mobile "
                "peers of the cell); exploiters always stay wired"
            ),
            parameters={
                "mixes": {m: ARENA_MIXES[m] for m in mixes},
                "mobile_fractions": fractions,
                "runs": p["runs"],
                "leechers": p["leechers"],
                "duration": duration,
                "per_strategy": per_strategy,
                "freerider_penalty": freerider_penalty,
                "tyrant_efficiency": tyrant_efficiency,
                "engine_events": total_events,
            },
        )


def figx_arena(
    mixes: Sequence[str] = tuple(ARENA_MIXES),
    mobile_fractions: Sequence[float] = (0.0, 0.5),
    runs: int = 3,
) -> ExperimentResult:
    """Run the strategy arena tournament with default parameters."""
    return run_scenario("figx_arena", {
        "mixes": list(mixes),
        "mobile_fractions": list(mobile_fractions),
        "runs": runs,
    })
