"""Command-line runner for the figure reproductions.

New-style usage (the scenario registry + parallel runner)::

    python -m repro.experiments list                 # what can I run?
    python -m repro.experiments list --json
    python -m repro.experiments run fig2a --jobs 4   # parallel, cached
    python -m repro.experiments run fig4bc --num-pieces 400 --json
    python -m repro.experiments run all --jobs 8 --no-cache
    python -m repro.experiments run fig3a --set runs=2 --set duration=10

Legacy spellings keep working (serial, uncached, exactly as before)::

    python -m repro.experiments fig2a
    python -m repro.experiments fig4bc --num-pieces 400
    python -m repro.experiments all --chart --trace run.jsonl

``run`` caches each simulated cell on disk keyed by (scenario, params,
seed, code version); a re-run with nothing changed executes zero
simulations.  ``--trace`` installs a global JSONL trace sink, which
forces serial execution (the sink lives in this process).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict
from typing import Dict, List, Optional

from ..runner import (
    BACKENDS,
    Runner,
    ResultCache,
    UnknownScenarioError,
    default_cache_dir,
    get_scenario,
    print_progress,
    run_scenario,
    scenario_names,
)

# Legacy `all` order (the pre-registry CLI ran the simple figures first,
# then the piecewise ones); kept stable so logs remain comparable.
ALL_ORDER: List[str] = [
    "fig2a", "fig2bc", "fig3a", "fig3b", "fig3c", "fig4a",
    "fig8a", "fig8b", "fig8c", "fig9c", "fig4bc", "fig9ab",
    "figx_chaos", "figx_scale", "figx_hybrid", "figx_arena", "figx_erasure",
    "figx_cdn",
]


def _overrides_for(name: str, num_pieces: Optional[int],
                   sets: Optional[Dict[str, object]] = None,
                   swarm_size: Optional[int] = None,
                   focal_hosts: Optional[int] = None) -> Dict[str, object]:
    """Merge --num-pieces / --swarm-size / --focal-hosts / --set into
    accepted overrides.

    A dedicated flag and a ``--set`` spelling of the same key is a
    contradiction, not a precedence question: erroring out beats
    silently ignoring one of the two values the user asked for.
    """
    overrides: Dict[str, object] = dict(sets or {})
    defaults = get_scenario(name).defaults

    def put(key: str, value: object, flag: str) -> None:
        if key in overrides:
            raise SystemExit(
                f"error: {flag} conflicts with --set {key}=...; "
                f"pass one or the other"
            )
        overrides[key] = value

    if num_pieces is not None and "num_pieces" in defaults:
        put("num_pieces", num_pieces, "--num-pieces")
    if swarm_size is not None:
        # figx_scale sweeps a list of sizes; a single --swarm-size pins
        # it (figx_hybrid's equivalent axis is the background size).
        if "swarm_sizes" in defaults:
            put("swarm_sizes", [swarm_size], "--swarm-size")
        elif "background_sizes" in defaults:
            put("background_sizes", [swarm_size], "--swarm-size")
        elif "swarm_size" in defaults:
            put("swarm_size", swarm_size, "--swarm-size")
    if focal_hosts is not None and "focal_hosts" in defaults:
        put("focal_hosts", focal_hosts, "--focal-hosts")
    return overrides


def _workload_for(args, sets: Dict[str, object]) -> Optional[Dict[str, object]]:
    """Build the Runner's workload axis from --catalog / --demand.

    The ambient workload takes precedence over scenario parameters, so a
    flag *and* a ``--set`` spelling of the same axis is a contradiction
    (one of the two values would be silently discarded) — same policy as
    :func:`_overrides_for`, erroring out beats guessing.
    """
    workload: Dict[str, object] = {}
    for key, value, flag in (
        ("catalog", args.catalog, "--catalog"),
        ("demand", args.demand, "--demand"),
    ):
        if value is None:
            continue
        if key in sets:
            raise SystemExit(
                f"error: {flag} conflicts with --set {key}=...; "
                f"pass one or the other"
            )
        try:
            parsed = json.loads(value)
        except json.JSONDecodeError:
            parsed = value  # CLI-string form, e.g. 'zipf:1.1@0.2'
        workload[key] = parsed
    return workload or None


def _parse_set(pairs: List[str]) -> Dict[str, object]:
    """``key=value`` pairs; values are parsed as JSON, else kept as strings."""
    out: Dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        try:
            out[key] = json.loads(raw)
        except json.JSONDecodeError:
            out[key] = raw
    return out


def _parse_strategy_mix(text: Optional[str]) -> Optional[Dict[str, object]]:
    """``--strategy-mix``: JSON, or ``[pop:]name=frac`` comma pairs.

    ``freerider=0.25`` targets the whole population;
    ``mobile:freerider=0.5,wired:tyrant=0.2`` targets populations.
    Validation of names/fractions happens in the Runner (repro.strategy).
    """
    if text is None:
        return None
    try:
        parsed = json.loads(text)
    except json.JSONDecodeError:
        parsed = {}
        for part in text.split(","):
            key, sep, raw = part.strip().partition("=")
            if not sep or not key:
                raise SystemExit(
                    f"--strategy-mix expects JSON or name=frac pairs, got {part!r}"
                )
            try:
                fraction = float(raw)
            except ValueError:
                raise SystemExit(
                    f"--strategy-mix fraction must be a number, got {raw!r}"
                ) from None
            population, colon, name = key.partition(":")
            if colon:
                parsed.setdefault(population.strip(), {})[name.strip()] = fraction
            else:
                parsed[key.strip()] = fraction
    if not isinstance(parsed, dict):
        raise SystemExit("--strategy-mix must be a JSON object or name=frac pairs")
    return parsed


def _resolve_names(figure: str) -> List[str]:
    if figure == "all":
        known = scenario_names()
        return [n for n in ALL_ORDER if n in known] + [
            n for n in known if n not in ALL_ORDER
        ]
    try:
        get_scenario(figure)
    except UnknownScenarioError as exc:
        # The CLI turns the registry error into a clean exit; library
        # callers of get_scenario/run_scenario get the exception itself.
        raise SystemExit(f"error: {exc.args[0]}") from None
    return [figure]


def run_one(
    name: str, num_pieces: int = 20, chart: bool = False, audit: bool = False
) -> int:
    """Legacy front door: run one figure serially and print its table.

    Returns the number of failed cells (always 0 unless auditing turns
    violations into failures).
    """
    _resolve_names(name)  # unknown figures exit cleanly, as they always did
    start = time.time()
    runner = Runner(jobs=1, audit=audit)
    run = runner.run(name, _overrides_for(name, num_pieces))
    print(run.result.table())
    if chart:
        from ..analysis import ascii_chart

        print()
        print(ascii_chart(run.result))
    for failure in run.failures:
        print(f"warning: {failure.summary()}", file=sys.stderr)
    print(f"[{time.time() - start:.1f}s]")
    return len(run.failures)


def _result_payload(run) -> Dict[str, object]:
    payload = asdict(run.result)
    payload["scenario"] = run.spec.name
    payload["spec_hash"] = run.spec.spec_hash()
    payload["backend"] = run.spec.backend
    payload["stats"] = {
        "total_cells": run.stats.total_cells,
        "executed": run.stats.executed,
        "cache_hits": run.stats.cache_hits,
        "failed": run.stats.failed,
        "retries": run.stats.retries,
        "elapsed_s": run.stats.elapsed_s,
    }
    payload["failures"] = [
        {"key": list(f.key), "seed": f.seed, "attempts": f.attempts,
         "error": f.error}
        for f in run.failures
    ]
    return payload


def _cmd_list(args) -> None:
    names = scenario_names()
    if args.json:
        print(json.dumps(
            [
                {
                    "name": n,
                    "description": get_scenario(n).description,
                    "defaults": get_scenario(n).params(),
                }
                for n in names
            ],
            indent=2, sort_keys=True,
        ))
        return
    width = max(len(n) for n in names)
    for n in names:
        print(f"{n.ljust(width)}  {get_scenario(n).description}")


def _cmd_run(args) -> None:
    names = []
    for figure in args.figures:
        for name in _resolve_names(figure):
            if name not in names:
                names.append(name)
    sets = _parse_set(args.set or [])
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = None if args.quiet else print_progress
    try:
        runner = Runner(
            jobs=args.jobs, cache=cache, progress=progress, audit=args.audit,
            cell_timeout=args.cell_timeout, chaos=args.chaos,
            chaos_intensity=args.chaos_intensity,
            chaos_horizon=args.chaos_horizon,
            backend=args.backend,
            strategy=args.strategy,
            strategy_mix=_parse_strategy_mix(args.strategy_mix),
            content=args.content,
            workload=_workload_for(args, sets),
        )
    except (ValueError, KeyError) as exc:
        message = exc.args[0] if exc.args else exc
        raise SystemExit(f"error: {message}") from None
    failed_cells = 0

    def run_all() -> None:
        nonlocal failed_cells
        payloads = []
        for name in names:
            start = time.time()
            try:
                run = runner.run(
                    name,
                    _overrides_for(name, args.num_pieces, sets,
                                   swarm_size=args.swarm_size,
                                   focal_hosts=args.focal_hosts),
                )
            except ValueError as exc:
                raise SystemExit(f"error: {exc}") from None
            failed_cells += len(run.failures)
            if args.json:
                payloads.append(_result_payload(run))
            else:
                print(run.result.table())
                if args.chart:
                    from ..analysis import ascii_chart

                    print()
                    print(ascii_chart(run.result))
                for failure in run.failures:
                    print(f"warning: {failure.summary()}", file=sys.stderr)
                print(f"[{run.stats.summary()} | {time.time() - start:.1f}s]")
                print()
        if args.json:
            out = payloads[0] if len(payloads) == 1 else payloads
            print(json.dumps(out, indent=2, sort_keys=True))

    if args.trace is not None:
        from ..obs import tracing

        try:
            open(args.trace, "w", encoding="utf-8").close()
        except OSError as exc:
            raise SystemExit(f"cannot write trace log {args.trace}: {exc}")
        with tracing.capture(path=args.trace):
            run_all()
        print(f"[trace written to {args.trace}]", file=sys.stderr)
    else:
        run_all()

    if args.audit and failed_cells:
        # Under --audit a failed cell is (almost always) an invariant
        # violation; make the run's exit status reflect it for CI.
        raise SystemExit(1)


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for independent cells (default 1)")
    parser.add_argument("--json", action="store_true",
                        help="emit the result as JSON instead of a table")
    parser.add_argument("--no-cache", action="store_true",
                        help="always simulate; do not read or write the cache")
    parser.add_argument("--cache-dir", default=default_cache_dir(), metavar="DIR",
                        help="result cache location (default: $REPRO_CACHE_DIR "
                             "or ./.repro-cache)")
    parser.add_argument("--set", action="append", metavar="KEY=VALUE",
                        help="override a scenario parameter (JSON value); "
                             "repeatable")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="suppress per-cell progress lines on stderr")
    parser.add_argument("--num-pieces", type=int, default=None,
                        help="piece count for fig4bc/fig9ab (20 or 400)")
    parser.add_argument("--backend", choices=list(BACKENDS), default=None,
                        help="simulation tier: 'packet' (event-level ground "
                             "truth), 'fluid' (repro.scale mean-field "
                             "engine for very large swarms), or 'hybrid' "
                             "(packet-level focal hosts inside a fluid "
                             "background); default: the scenario's "
                             "preferred backend")
    parser.add_argument("--swarm-size", type=int, default=None, metavar="N",
                        help="pin the swarm size for scenarios that sweep it "
                             "(figx_scale: replaces the size grid with [N]; "
                             "figx_hybrid: pins the background size)")
    parser.add_argument("--focal-hosts", type=int, default=None, metavar="N",
                        help="number of packet-level focal hosts for "
                             "hybrid-backend scenarios (figx_hybrid)")
    parser.add_argument("--chart", action="store_true",
                        help="also render an ASCII chart of the series")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write the structured cross-layer event log of "
                             "the run as JSONL to PATH (forces --jobs 1; "
                             "render it with scripts/run_report.py)")
    parser.add_argument("--audit", action="store_true",
                        help="check cross-layer invariants (repro.audit) in "
                             "every simulated cell; violations fail the cell "
                             "and the run exits non-zero (disables the cache)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-cell wall-clock budget; a cell exceeding it "
                             "becomes a failed cell instead of hanging the run")
    parser.add_argument("--chaos", metavar="PRESET", default=None,
                        help="inject a deterministic fault schedule "
                             "(repro.chaos preset: "
                             "churn|blackout|degrade|handoff-storm|"
                             "corruption|mixed) into every simulated cell")
    parser.add_argument("--chaos-intensity", type=float, default=1.0,
                        metavar="X",
                        help="scale the chaos preset's fault pressure "
                             "(0 disables; default 1.0)")
    parser.add_argument("--chaos-horizon", type=float, default=300.0,
                        metavar="SECONDS",
                        help="simulated window the chaos preset lays its "
                             "faults over (default 300)")
    parser.add_argument("--strategy", metavar="NAME", default=None,
                        help="run the whole peer population under one "
                             "repro.strategy client strategy "
                             "(reference|freerider|tyrant|propshare)")
    parser.add_argument("--strategy-mix", metavar="MIX", default=None,
                        help="strategy mix for the peer population: JSON "
                             "('{\"freerider\": 0.25}') or comma pairs "
                             "('freerider=0.25' / 'mobile:tyrant=0.5'); "
                             "unlisted fraction runs reference")
    parser.add_argument("--content", metavar="MODE", default=None,
                        help="content mode (repro.coding): 'replication' "
                             "(default pipeline), 'group:K/N' k-of-n erasure "
                             "coding (e.g. group:4/6), or a JSON object")
    parser.add_argument("--catalog", metavar="SPEC", default=None,
                        help="CDN catalog (repro.cdn) every CDN scenario "
                             "serves: an asset count, "
                             "'assets:N,size_kib:S,piece_kib:P', or a JSON "
                             "object (figx_cdn)")
    parser.add_argument("--demand", metavar="SPEC", default=None,
                        help="CDN request process (repro.cdn): "
                             "'zipf:ALPHA[@RATE]' (e.g. zipf:1.1@0.2) or a "
                             "JSON object with optional flash_crowd/"
                             "daily_cycle axes (figx_cdn)")


def main(argv=None) -> None:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures via the scenario registry.",
    )
    sub = parser.add_subparsers(dest="command")

    p_list = sub.add_parser("list", help="list registered scenarios")
    p_list.add_argument("--json", action="store_true",
                        help="emit names, descriptions and defaults as JSON")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser(
        "run", help="run one or more scenarios (or 'all') through the runner"
    )
    p_run.add_argument("figures", nargs="+", metavar="figure",
                       help="|".join(scenario_names()) + "|all")
    _add_run_arguments(p_run)
    p_run.set_defaults(func=_cmd_run)

    # Legacy spelling: `python -m repro.experiments fig2a [--num-pieces N]
    # [--chart] [--trace PATH]` — serial and uncached, exactly as before
    # the registry existed.
    if argv and argv[0] not in ("list", "run", "-h", "--help"):
        legacy = argparse.ArgumentParser(
            prog="python -m repro.experiments",
            description="Reproduce one figure of the paper and print its table.",
        )
        legacy.add_argument("figure",
                            help="|".join(scenario_names()) + "|all")
        legacy.add_argument("--num-pieces", type=int, default=20,
                            help="piece count for fig4bc/fig9ab (20 or 400)")
        legacy.add_argument("--chart", action="store_true",
                            help="also render an ASCII chart of the series")
        legacy.add_argument("--trace", metavar="PATH", default=None,
                            help="write the structured cross-layer event log "
                                 "of the run as JSONL to PATH (render it with "
                                 "scripts/run_report.py)")
        legacy.add_argument("--audit", action="store_true",
                            help="check cross-layer invariants (repro.audit); "
                                 "violations exit non-zero")
        args = legacy.parse_args(argv)
        failed_cells = 0

        def run_all() -> None:
            nonlocal failed_cells
            if args.figure == "all":
                for name in _resolve_names("all"):
                    failed_cells += run_one(
                        name, args.num_pieces, chart=args.chart, audit=args.audit
                    )
                    print()
            else:
                failed_cells += run_one(
                    args.figure, args.num_pieces, chart=args.chart, audit=args.audit
                )

        if args.trace is not None:
            from ..obs import tracing

            try:
                open(args.trace, "w", encoding="utf-8").close()
            except OSError as exc:
                legacy.error(f"cannot write trace log {args.trace}: {exc}")
            with tracing.capture(path=args.trace):
                run_all()
            print(f"[trace written to {args.trace}]")
        else:
            run_all()
        if args.audit and failed_cells:
            raise SystemExit(1)
        return

    args = parser.parse_args(argv)
    if args.command is None:
        parser.error("choose a command: list | run | <figure>")
    args.func(args)


if __name__ == "__main__":
    main(sys.argv[1:])
