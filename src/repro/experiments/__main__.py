"""Command-line runner for the figure reproductions.

Usage::

    python -m repro.experiments fig2a
    python -m repro.experiments fig4bc --num-pieces 400
    python -m repro.experiments all          # everything (slow)

Each command runs the experiment at its benchmark-scale defaults and prints
the paper-style table.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from . import (
    fig2a,
    fig2bc,
    fig3a,
    fig3b,
    fig3c,
    fig4a,
    fig4bc,
    fig8a,
    fig8b,
    fig8c,
    fig9ab,
    fig9c,
)

SIMPLE: Dict[str, Callable] = {
    "fig2a": fig2a,
    "fig2bc": fig2bc,
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig3c": fig3c,
    "fig4a": fig4a,
    "fig8a": fig8a,
    "fig8b": fig8b,
    "fig8c": fig8c,
    "fig9c": fig9c,
}

PIECEWISE: Dict[str, Callable] = {
    "fig4bc": fig4bc,
    "fig9ab": fig9ab,
}


def run_one(name: str, num_pieces: int, chart: bool = False) -> None:
    start = time.time()
    if name in SIMPLE:
        result = SIMPLE[name]()
    elif name in PIECEWISE:
        result = PIECEWISE[name](num_pieces=num_pieces)
    else:
        raise SystemExit(f"unknown figure {name!r}; choose from "
                         f"{sorted(SIMPLE) + sorted(PIECEWISE)} or 'all'")
    print(result.table())
    if chart:
        from ..analysis import ascii_chart

        print()
        print(ascii_chart(result))
    print(f"[{time.time() - start:.1f}s]")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce one figure of the paper and print its table.",
    )
    parser.add_argument("figure", help="fig2a|fig2bc|fig3a|fig3b|fig3c|fig4a|"
                                       "fig4bc|fig8a|fig8b|fig8c|fig9ab|fig9c|all")
    parser.add_argument("--num-pieces", type=int, default=20,
                        help="piece count for fig4bc/fig9ab (20 or 400)")
    parser.add_argument("--chart", action="store_true",
                        help="also render an ASCII chart of the series")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write the structured cross-layer event log "
                             "of the run as JSONL to PATH (render it with "
                             "scripts/run_report.py)")
    args = parser.parse_args(argv)

    def run_all() -> None:
        if args.figure == "all":
            for name in list(SIMPLE) + list(PIECEWISE):
                run_one(name, args.num_pieces, chart=args.chart)
                print()
        else:
            run_one(args.figure, args.num_pieces, chart=args.chart)

    if args.trace is not None:
        from ..obs import tracing

        try:
            open(args.trace, "w", encoding="utf-8").close()
        except OSError as exc:
            parser.error(f"cannot write trace log {args.trace}: {exc}")
        with tracing.capture(path=args.trace):
            run_all()
        print(f"[trace written to {args.trace}]")
    else:
        run_all()


if __name__ == "__main__":
    main(sys.argv[1:])
