"""Erasure-coding sweep — swarm survival under chaos (``figx_erasure``).

Not a figure from the paper: a robustness experiment the paper's
availability story implies.  Content is *custody-seeded* — ``m``
custodians each hold an interleaved column of the piece space
(:meth:`~repro.bittorrent.swarm.SwarmScenario.custody_pieces`) and never
fetch (the ``hold`` selector), so no single peer is a full replica.  A
composed chaos schedule (``churn`` + ``handoff-storm`` presets) then
crashes peers and forces IP handoffs at increasing intensity while a
mixed wired/mobile leecher population races a completion deadline.

Three content variants run on the same seeds and the same byte volume:

* **replication** — plain pieces.  Any custodian outage makes its whole
  column unfetchable until it returns: the swarm's progress gates on
  every custodian's uptime.
* **coded** — ``group:k/n`` erasure groups (:mod:`repro.coding`) over a
  proportionally larger coded object (``n/k`` expansion, so the bytes a
  leecher must move are identical).  With ``n`` a multiple of ``m``,
  each custodian holds ``n/m`` coded pieces of every group — at the
  default ``4/6`` over three custodians, any *single* custodian outage
  still leaves ``k`` live pieces per group and the swarm keeps fetching
  at full rate.
* **ma** — replication content plus the paper's own §5.2.3 mitigation:
  mobile leechers run wP2P's mobility-aware fetching.  Smarter piece
  *ordering* cannot manufacture availability, so it trails coding as
  custodian churn intensifies.

Expectation: leecher survival (fraction complete by the deadline) falls
with chaos intensity for every variant, and the coded swarm holds a
survival advantage over replication at every nonzero intensity — at the
pinned gate intensity replication misses the deadline outright while
the coded swarm still completes (the CI survival gate).

The fluid backend maps the same axes through the
:func:`repro.scale.model.content_rate_factor` coded-availability
surrogate: custodian flakiness becomes a seed-class duty cycle, and the
content mode turns that availability into a download-rate factor.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis import ExperimentResult, Series
from ..bittorrent import ClientConfig
from ..bittorrent.selection import make_selector
from ..bittorrent.swarm import SwarmScenario
from ..chaos import ChaosSchedule, preset_schedule
from ..coding import coded_file_size
from ..runner import Scenario, collect, run_scenario, scenario
from ..scale import FluidParams, FluidSwarm, PeerClass
from ..wp2p import WP2PClient
from .fig9_wp2p import mf_only_config

VARIANTS: Sequence[str] = ("replication", "coded", "ma")
CHAOS_INTENSITIES: Sequence[float] = (0.0, 8.0, 16.0)


#: The handoff-storm preset runs at this fraction of the churn
#: intensity.  Storm shots restart every mobile peer *simultaneously*, a
#: symmetric hit that censors mobile leechers in every content mode at
#: high intensity; quarter strength keeps storms a real disturbance
#: while leaving custodian churn — the availability threat the content
#: modes actually differ on — the dominant axis.
STORM_SCALE = 0.25


def erasure_schedule(intensity: float, horizon: float) -> ChaosSchedule:
    """The sweep's composed chaos: peer churn plus IP-handoff storms."""
    if intensity <= 0:
        return ChaosSchedule()
    schedule = preset_schedule("churn", intensity, horizon)
    if intensity * STORM_SCALE > 0:
        schedule = schedule + preset_schedule(
            "handoff-storm", intensity * STORM_SCALE, horizon
        )
    return schedule


def _ma_factory(sim, host, torrent, **kwargs):
    kwargs.setdefault("config", mf_only_config(task_restart_delay=15.0))
    return WP2PClient(sim, host, torrent, **kwargs)


def erasure_run(
    seed: int,
    variant: str,
    intensity: float,
    mobile_fraction: float,
    duration: float,
    horizon: float,
    source_kib: int = 1536,
    piece_length: int = 16_384,
    code_k: int = 4,
    code_n: int = 6,
    custodians: int = 3,
    leechers: int = 4,
) -> Dict[str, object]:
    """One packet cell: survival + completion of the leecher population.

    All variants move the same payload volume: the coded torrent is
    ``n/k`` larger on the wire but decodes after ``k`` of every ``n``
    pieces, i.e. after exactly ``source_kib`` worth of downloading.
    """
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r} (expected {VARIANTS})")
    source_size = source_kib * 1024
    coded = variant == "coded"
    sc = SwarmScenario(
        seed=seed,
        file_size=(
            coded_file_size(source_size, code_k, code_n) if coded else source_size
        ),
        piece_length=piece_length,
        tracker_interval=60.0,
        content=f"group:{code_k}/{code_n}" if coded else None,
    )
    # Custody seeds: interleaved piece columns, never fetching.  No peer
    # holds a full replica — availability is a property of the *set*.
    # A hold-custodian receives nothing, so tit-for-tat ranks every
    # leecher equally at zero; with the stock 3 unchoke slots the
    # optimistic rotation starves whoever needs this column most and
    # single pieces stall for minutes.  Widening the slots makes the
    # custodian serve its whole (tiny) peering set.
    for j in range(custodians):
        sc.add_wired_peer(
            f"cust{j}",
            initial_pieces=sc.custody_pieces(j, custodians),
            selector=make_selector("hold"),
            down_rate=1_000_000,
            up_rate=48_000,
            config=ClientConfig(unchoke_slots=8),
        )
    mobile_count = round(leechers * mobile_fraction)
    names: List[str] = []
    for i in range(leechers - mobile_count):
        names.append(f"leech{i}")
        sc.add_wired_peer(names[-1], down_rate=500_000, up_rate=8_000)
    for i in range(mobile_count):
        names.append(f"mob{i}")
        if variant == "ma":
            handle = sc.add_wireless_peer(
                names[-1], rate=64_000, client_factory=_ma_factory,
            )
        else:
            handle = sc.add_wireless_peer(
                names[-1], rate=64_000,
                config=ClientConfig(task_restart_delay=15.0),
            )
        sc.add_mobility(handle, interval=90.0, downtime=1.0)
    # An ambient runner-level preset (--chaos) takes precedence; the
    # sweep's composed churn + handoff-storm schedule applies otherwise.
    if sc.chaos is None:
        sc.add_chaos(erasure_schedule(intensity, horizon))
    sc.start_all()
    sc.run_until_complete(names=names, timeout=duration)
    completions = [sc[n].client.completion_time for n in names]
    survivors = sum(1 for t in completions if t is not None)
    recovery = sc.chaos.recovery if sc.chaos is not None else None
    return {
        "survival": survivors / max(len(names), 1),
        "completion": (
            max(t for t in completions if t is not None)
            if survivors == len(names)
            else None
        ),
        "mean_completion": sum(
            t if t is not None else duration for t in completions
        ) / max(len(names), 1),
        "faults": float(sc.chaos.faults_injected if sc.chaos is not None else 0),
        "mean_mttr": recovery.mean_mttr() if recovery is not None else None,
    }


def erasure_fluid_cell(
    variant: str,
    intensity: float,
    mobile_fraction: float,
    p: Dict[str, object],
) -> Dict[str, object]:
    """One fluid cell: the same axes through the coded surrogate.

    Chaos becomes duty cycles: churn gives the custody-seed class a
    handoff-style down/up cycle whose availability shrinks with
    intensity, and handoff storms shorten the mobile class's interval.
    The content mode then maps seed availability to a download-rate
    factor via :func:`repro.scale.model.content_rate_factor`.
    """
    duration = float(p["duration"])
    leechers = float(p["leechers"])
    mobile = round(leechers * mobile_fraction)
    wired = leechers - mobile
    seed_handoff = None
    if intensity > 0:
        # Custodian unavailability odds grow with sqrt(intensity):
        # the packet schedule staggers churn victims and runs storms at
        # STORM_SCALE, so chaos compounds sub-linearly.  The fluid tier
        # charges holder darkness twice (supply loss *and* the content
        # rate factor), so the duty cycle itself must stay gentle.
        availability = 1.0 / (1.0 + 0.19 * intensity ** 0.5)
        # Interval giving that duty cycle at the preset's 8s downtime.
        seed_handoff = 8.0 * availability / (1.0 - availability)
    classes = [
        PeerClass(
            "custody", float(p["custodians"]), 48_000.0, 1_000_000.0,
            seed=True, mobile=intensity > 0,
            handoff_interval=seed_handoff, handoff_downtime=8.0,
            reconnect_cost=0.0, wp2p=True,
        ),
    ]
    if wired > 0:
        classes.append(
            PeerClass("wired", float(wired), 8_000.0, 500_000.0)
        )
    if mobile > 0:
        classes.append(PeerClass(
            "mobile", float(mobile), 12_000.0, 64_000.0,
            mobile=True, wp2p=(variant == "ma"), wireless_shared=True,
            handoff_interval=max(10.0, 90.0 / (1.0 + intensity)),
            handoff_downtime=1.0,
            selection="inorder" if variant == "ma" else "rarest",
        ))
    params = FluidParams(
        file_size=int(p["source_kib"]) * 1024,
        piece_length=int(p["piece_length"]),
        classes=tuple(classes),
        max_time=duration,
        content_mode="group" if variant == "coded" else "replication",
        code_k=int(p["code_k"]) if variant == "coded" else 1,
        code_n=int(p["code_n"]) if variant == "coded" else 1,
    )
    result = FluidSwarm(params).run()
    completion = result.leecher_completion_time()
    return {
        "survival": 1.0 if completion is not None else 0.0,
        "completion": completion,
        "mean_completion": completion if completion is not None else duration,
        "faults": 0.0,
        "mean_mttr": None,
    }


@scenario
class FigXErasure(Scenario):
    """Swarm survival & completion vs chaos intensity, per content mode."""

    name = "figx_erasure"
    description = (
        "Erasure-coding sweep: custody-seeded replication vs k-of-n coding "
        "vs mobility-aware fetching under churn + handoff storms"
    )
    backends = ("packet", "fluid")
    defaults = {
        "variants": list(VARIANTS),
        "intensities": list(CHAOS_INTENSITIES),
        "mobile_fractions": [0.5],
        "runs": 2,
        "duration": 210.0,
        "horizon": 240.0,
        "source_kib": 1536,
        "piece_length": 16_384,
        "code_k": 4,
        "code_n": 6,
        "custodians": 3,
        "leechers": 4,
        "base_seed": 1300,
    }

    def cells(self, p):
        for variant in p["variants"]:
            for intensity in p["intensities"]:
                for fraction in p["mobile_fractions"]:
                    for r in range(p["runs"]):
                        yield (variant, intensity, fraction), p["base_seed"] + r

    def run_cell(self, key, seed, p):
        variant, intensity, fraction = key
        return erasure_run(
            seed,
            variant=variant,
            intensity=float(intensity),
            mobile_fraction=float(fraction),
            duration=float(p["duration"]),
            horizon=float(p["horizon"]),
            source_kib=int(p["source_kib"]),
            piece_length=int(p["piece_length"]),
            code_k=int(p["code_k"]),
            code_n=int(p["code_n"]),
            custodians=int(p["custodians"]),
            leechers=int(p["leechers"]),
        )

    def run_cell_fluid(self, key, seed, p):
        variant, intensity, fraction = key
        return erasure_fluid_cell(
            variant, float(intensity), float(fraction), dict(p)
        )

    def assemble(self, p, values, failures):
        intensities = [float(i) for i in p["intensities"]]
        fractions = [float(f) for f in p["mobile_fractions"]]
        headline = fractions[0]
        variants = [str(v) for v in p["variants"]]

        def sweep(variant: str, field: str) -> List[float]:
            out: List[float] = []
            for intensity in intensities:
                vals = collect(values, (variant, intensity, headline))
                out.append(
                    sum(float(v[field]) for v in vals) / max(len(vals), 1)
                )
            return out

        survival = {v: sweep(v, "survival") for v in variants}
        mean_completion = {v: sweep(v, "mean_completion") for v in variants}
        gate: Dict[str, object] = {}
        if "replication" in survival and "coded" in survival:
            advantage = [
                c - r
                for c, r in zip(survival["coded"], survival["replication"])
            ]
            gate = {
                "intensities": intensities,
                "replication_survival": survival["replication"],
                "coded_survival": survival["coded"],
                "advantage": advantage,
                "gate_intensity": intensities[-1],
                "replication_at_gate": survival["replication"][-1],
                "coded_at_gate": survival["coded"][-1],
            }
        labels = {
            "replication": "Replication (custody-seeded)",
            "coded": f"Erasure {p['code_k']}-of-{p['code_n']}",
            "ma": "Replication + MA fetching",
        }
        return ExperimentResult(
            figure="Erasure sweep",
            title="Leecher survival vs chaos intensity "
                  f"({headline:.0%} mobile, churn + handoff storms)",
            x_label="Chaos intensity",
            y_label="Survival (fraction complete by deadline)",
            series=[
                Series(labels.get(v, v), intensities, survival[v])
                for v in variants
            ],
            paper_expectation=(
                "survival degrades with chaos intensity for every content "
                "mode; k-of-n coding over custody columns survives custodian "
                "outages that stall replication outright, so the coded swarm "
                "keeps a survival advantage at every nonzero intensity and "
                "still completes at the gate intensity where replication "
                "misses the deadline"
            ),
            notes="mean completion (s, censored at deadline) "
                  + " | ".join(
                      f"{v}: "
                      + ", ".join(f"{t:.0f}" for t in mean_completion[v])
                      for v in variants
                  ),
            parameters={
                "variants": variants,
                "intensities": intensities,
                "mobile_fractions": fractions,
                "runs": p["runs"],
                "duration_s": p["duration"],
                "code": f"{p['code_k']}/{p['code_n']}",
                "custodians": p["custodians"],
                "survival": survival,
                "gate": gate,
            },
        )


def figx_erasure(
    variants: Sequence[str] = VARIANTS,
    intensities: Sequence[float] = CHAOS_INTENSITIES,
    runs: int = 2,
    duration: float = 210.0,
    base_seed: int = 1300,
) -> ExperimentResult:
    """Erasure sweep: content-mode survival under churn + handoff storms."""
    return run_scenario("figx_erasure", {
        "variants": list(variants), "intensities": list(intensities),
        "runs": runs, "duration": duration, "base_seed": base_seed,
    })
