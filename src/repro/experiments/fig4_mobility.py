"""Figure 4 — server mobility and rarest-first fetching (§3.5–3.6).

* ``fig4a``: throughput of a fixed peer served by three (mobile) seeds, as
  the seeds' IP-change interval shrinks.  Two series: only one seed mobile
  vs all three mobile.  Faster mobility → lower throughput; all-mobile is
  strictly worse than one-mobile.
* ``fig4bc``: playable percentage vs downloaded percentage under
  rarest-first fetching for a 20-piece (5 MB) and a 400-piece (100 MB)
  file.  Piece counts match the paper exactly (playability is a function
  of piece count, not bytes); byte sizes are scaled.

Both figures are registered scenarios (``fig4a``, ``fig4bc``); the
functions of the same name remain as serial front doors.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis import ExperimentResult, Series, summarize
from ..bittorrent import ClientConfig, RarestFirstSelector
from ..bittorrent.selection import PieceSelector
from ..bittorrent.swarm import SwarmScenario
from ..media import average_curves, playability_curve
from ..runner import Scenario, collect, run_scenario, scenario

MOBILITY_INTERVALS: Sequence[Optional[float]] = (None, 120.0, 90.0, 60.0, 30.0)
MOBILITY_LABELS = ("No mobility", "Every 2 min", "Every 1.5 min", "Every 1 min", "Every 0.5 min")


def _fig4a_run(
    seed: int,
    interval: Optional[float],
    mobile_seeds: int,
    duration: float,
    tracker_interval: float,
) -> float:
    """One run: the fixed peer's download throughput (bytes/s)."""
    sc = SwarmScenario(
        seed=seed,
        file_size=256 * 1024 * 1024,  # never completes within the run
        piece_length=131_072,
        tracker_interval=tracker_interval,
    )
    # task_restart_delay models what a deployed client actually does after
    # an address change: tear the task down, re-initiate it, re-check the
    # partial file on disk, and re-announce — tens of seconds in practice.
    seed_cfg = ClientConfig(unchoke_slots=3, choke_interval=5.0, task_restart_delay=15.0)
    fixed_cfg = ClientConfig(unchoke_slots=3, choke_interval=5.0)
    handles = []
    for i in range(3):
        handle = sc.add_wireless_peer(
            f"s{i}", complete=True, rate=100_000, config=seed_cfg
        )
        handles.append(handle)
    fixed = sc.add_wired_peer("fixed", down_rate=500_000, up_rate=48_000, config=fixed_cfg)
    if interval is not None:
        for handle in handles[:mobile_seeds]:
            sc.add_mobility(handle, interval=interval, downtime=2.0, jitter=interval * 0.2)
    sc.start_all()
    sc.run(until=duration)
    return fixed.client.downloaded.total / duration


@scenario
class Fig4A(Scenario):
    """Fixed-peer throughput vs server (mobile seed) mobility rate."""

    name = "fig4a"
    description = "Figure 4(a): server-side mobility vs fixed-peer throughput"
    defaults = {
        "intervals": list(MOBILITY_INTERVALS),
        "runs": 2,
        "duration": 300.0,
        "tracker_interval": 60.0,
        "base_seed": 600,
    }

    def cells(self, p):
        for interval in p["intervals"]:
            for r in range(p["runs"]):
                # The all-mobile sweep historically runs on a disjoint
                # seed block (base_seed + 50) so the two series see
                # independent environment noise.
                yield ("one", interval), p["base_seed"] + r
                yield ("all", interval), p["base_seed"] + 50 + r

    def run_cell(self, key, seed, p):
        series, interval = key
        return _fig4a_run(
            seed, interval, 1 if series == "one" else 3,
            p["duration"], p["tracker_interval"],
        )

    def assemble(self, p, values, failures):
        def sweep(series: str, label: str) -> Series:
            ys: List[float] = []
            errs: List[float] = []
            for interval in p["intervals"]:
                vals = collect(values, (series, interval))
                ys.append(sum(vals) / len(vals) / 1000.0)
                errs.append(summarize([v / 1000.0 for v in vals]).ci95)
            return Series(label, list(range(len(p["intervals"]))), ys, y_err=errs)

        return ExperimentResult(
            figure="Figure 4(a)",
            title="Impact of server-side mobility on a fixed peer",
            x_label="Mobility rate",
            y_label="Throughput (KB/s)",
            series=[
                sweep("one", "One peer is mobile"),
                sweep("all", "All peers are mobile"),
            ],
            paper_expectation=(
                "throughput falls as the IP-change interval shrinks; the "
                "degradation is amplified when all corresponding peers are mobile"
            ),
            notes="x axis: " + ", ".join(MOBILITY_LABELS),
            parameters={
                "intervals_s": list(p["intervals"]),
                "runs": p["runs"],
                "duration_s": p["duration"],
            },
        )


def fig4a(
    intervals: Sequence[Optional[float]] = MOBILITY_INTERVALS,
    runs: int = 2,
    duration: float = 300.0,
    tracker_interval: float = 60.0,
    base_seed: int = 600,
) -> ExperimentResult:
    """Fixed-peer throughput vs server (mobile seed) mobility rate."""
    return run_scenario("fig4a", {
        "intervals": list(intervals), "runs": runs, "duration": duration,
        "tracker_interval": tracker_interval, "base_seed": base_seed,
    })


def playability_run(
    seed: int,
    num_pieces: int,
    selector: Optional[PieceSelector] = None,
    piece_length: int = 16_384,
    client_factory=None,
    timeout: float = 1200.0,
) -> List[tuple]:
    """One full download; returns its (downloaded %, playable %) curve.

    The downloader fetches from three seeds plus two staggered leeches, so
    availability varies and rarest-first has real rarity signal to follow
    (as in the paper's live-swarm measurements).
    """
    from ..bittorrent.swarm import SwarmScenario

    sc = SwarmScenario(
        seed=seed,
        file_size=num_pieces * piece_length,
        piece_length=piece_length,
    )
    for i in range(3):
        sc.add_wired_peer(f"s{i}", complete=True, up_rate=80_000)
    for i in range(2):
        sc.add_wired_peer(f"l{i}", up_rate=60_000)
    kwargs = {}
    if client_factory is not None:
        kwargs["client_factory"] = client_factory
    x = sc.add_wireless_peer(
        "x", rate=200_000, selector=selector, **kwargs
    )
    sc.start_all()
    sc.run_until_complete(["x"], timeout=timeout)
    return playability_curve(sc.torrent, x.client.manager.completion_order)


GRID = [float(g) for g in range(0, 101, 10)]


@scenario
class Fig4BC(Scenario):
    """Playable % vs downloaded % under rarest-first fetching."""

    name = "fig4bc"
    description = (
        "Figure 4(b, c): rarest-first playability for 20- / 400-piece files"
    )
    defaults = {
        "num_pieces": 20,
        "runs": 10,
        "base_seed": 700,
        "grid": GRID,
    }

    def cells(self, p):
        for r in range(p["runs"]):
            yield ("curve",), p["base_seed"] + r

    def run_cell(self, key, seed, p):
        curve = playability_run(
            seed, p["num_pieces"], selector=RarestFirstSelector()
        )
        return [[d, play] for d, play in curve]

    def assemble(self, p, values, failures):
        num_pieces = p["num_pieces"]
        curves = [
            [(d, play) for d, play in curve]
            for curve in collect(values, ("curve",))
        ]
        averaged = average_curves(curves, p["grid"])
        label = "5 MB file (20 pieces)" if num_pieces == 20 else f"{num_pieces} pieces"
        if num_pieces == 400:
            label = "100 MB file (400 pieces)"
        figure = "Figure 4(b)" if num_pieces == 20 else "Figure 4(c)"
        return ExperimentResult(
            figure=figure,
            title="Playable fraction under rarest-first fetching",
            x_label="Downloaded percentage (%)",
            y_label="Playable percentage (%)",
            series=[Series(label, [g for g, _ in averaged], [play for _, play in averaged])],
            paper_expectation=(
                "playability stays near zero until most of the file is "
                "downloaded; worse for more pieces (100 MB: >90% downloaded "
                "needed to play the first 2%)"
            ),
            parameters={"num_pieces": num_pieces, "runs": p["runs"]},
        )


def fig4bc(
    num_pieces: int,
    runs: int = 10,
    base_seed: int = 700,
    grid: Sequence[float] = GRID,
) -> ExperimentResult:
    """Playable %% vs downloaded %% under rarest-first fetching.

    ``num_pieces=20`` reproduces Figure 4(b) (5 MB at the 256 KB default
    piece length); ``num_pieces=400`` reproduces Figure 4(c) (100 MB).
    """
    return run_scenario("fig4bc", {
        "num_pieces": num_pieces, "runs": runs,
        "base_seed": base_seed, "grid": list(grid),
    })
