"""Figure 8 — wP2P evaluation: AM, identity retention, LIHD (§5.2.1–5.2.2).

* ``fig8a``: two wireless leeches holding complementary halves of a file
  exchange over bi-directional TCP at swept BER; one runs wP2P's
  Age-based Manipulation, the other is the default client.  Paper: wP2P
  ≈ 20 % more download throughput at every BER.
* ``fig8b``: downloaded size vs time in a busy swarm with IP changes every
  minute — identity retention (wP2P) vs fresh-peer-ID restarts (default).
  Paper: wP2P pulls far ahead (≈ 100 MB extra after 50 min).
* ``fig8c``: download throughput vs wireless channel bandwidth with LIHD
  (α = β = 10 KB/s) vs the default client's uncapped uploads.  Paper:
  wP2P wins increasingly with bandwidth, up to ≈ 70 %.

Each figure is a registered scenario; ``fig8a``/``fig8b``/``fig8c``
remain as serial front doors over the runner.
"""

from __future__ import annotations

import random as _random
from typing import List, Sequence, Tuple

from ..analysis import ExperimentResult, Series, average_runs, summarize
from ..bittorrent import ClientConfig
from ..bittorrent.swarm import SwarmScenario
from ..runner import Scenario, collect, run_scenario, scenario
from ..wp2p import WP2PClient, WP2PConfig
from .base import random_piece_subset

AM_BERS: Tuple[float, ...] = (1e-6, 5e-6, 1e-5, 1.5e-5, 3e-5)
"""The paper sweeps 1e-6..1.5e-5; we extend to 3e-5 because our TCP
(which, unlike the paper's era stacks, restarts the RTO timer on fast
retransmit) only becomes ACK-loss-bound at higher error rates — that is
where AM's ~20-60%% gain shows in this reproduction."""


def am_only_config(**overrides) -> WP2PConfig:
    """wP2P with only the AM component active (isolates §5.2.1)."""
    cfg = WP2PConfig(
        am_enabled=True,
        mobility_aware_fetching=False,
        identity_retention=False,
        role_reversal=False,
    )
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def ia_config(**overrides) -> WP2PConfig:
    """wP2P with the incentive-aware components (IR + RR), AM/MF off."""
    cfg = WP2PConfig(
        am_enabled=False,
        mobility_aware_fetching=False,
        identity_retention=True,
        role_reversal=True,
    )
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def _fig8a_run(seed: int, ber: float, duration: float) -> Tuple[float, float]:
    """One run: (default, wP2P) download rates in bytes/s.

    Replicates the paper's setup: a seed populates two wireless leeches
    with disjoint halves (modelled directly as complementary initial
    pieces, i.e. the state after the paper removes the seed); thereafter
    all transfer is leech<->leech over one bi-directional TCP connection.
    """
    sc = SwarmScenario(seed=seed, file_size=6 * 1024 * 1024, piece_length=65_536)
    n = sc.torrent.num_pieces
    even = [i for i in range(n) if i % 2 == 0]
    odd = [i for i in range(n) if i % 2 == 1]
    default = sc.add_wireless_peer(
        "default", rate=100_000, ber=ber, initial_pieces=even,
    )
    wp2p = sc.add_wireless_peer(
        "wp2p", rate=100_000, ber=ber, initial_pieces=odd,
        client_factory=WP2PClient, config=am_only_config(),
    )
    sc.start_all()
    warmup = 5.0
    sc.run(until=warmup)
    base_d = default.client.downloaded.total
    base_w = wp2p.client.downloaded.total
    sc.run(until=warmup + duration)
    return (
        (default.client.downloaded.total - base_d) / duration,
        (wp2p.client.downloaded.total - base_w) / duration,
    )


@scenario
class Fig8A(Scenario):
    """AM vs default: download throughput across BER (Figure 8(a))."""

    name = "fig8a"
    description = "Figure 8(a): age-based manipulation vs default over BER"
    defaults = {
        "bers": list(AM_BERS),
        "runs": 5,
        "duration": 60.0,
        "base_seed": 800,
    }

    def cells(self, p):
        for ber in p["bers"]:
            for r in range(p["runs"]):
                yield (ber,), p["base_seed"] + r

    def run_cell(self, key, seed, p):
        # One swarm produces both clients' rates: the A/B pair shares its
        # environment noise by construction.
        default_rate, wp2p_rate = _fig8a_run(seed, key[0], p["duration"])
        return {"default": default_rate, "wp2p": wp2p_rate}

    def assemble(self, p, values, failures):
        def sweep(which: str, label: str) -> Series:
            ys: List[float] = []
            errs: List[float] = []
            for ber in p["bers"]:
                vals = [pair[which] for pair in collect(values, (ber,))]
                ys.append(sum(vals) / len(vals) / 1000.0)
                errs.append(summarize([v / 1000.0 for v in vals]).ci95)
            return Series(label, list(p["bers"]), ys, y_err=errs)

        return ExperimentResult(
            figure="Figure 8(a)",
            title="Age-based manipulation under random wireless losses",
            x_label="Bit error rate",
            y_label="Throughput (KB/s)",
            series=[sweep("default", "Default P2P"), sweep("wp2p", "wP2P")],
            paper_expectation="wP2P outperforms the default client at all BERs (~20%)",
            parameters={"runs": p["runs"], "duration_s": p["duration"]},
        )


def fig8a(
    bers: Sequence[float] = AM_BERS,
    runs: int = 5,
    duration: float = 60.0,
    base_seed: int = 800,
) -> ExperimentResult:
    """AM vs default: download throughput across BER (Figure 8(a))."""
    return run_scenario("fig8a", {
        "bers": list(bers), "runs": runs,
        "duration": duration, "base_seed": base_seed,
    })


def _fig8b_swarm(seed: int, handoff_interval: float):
    """The busy-swarm testbed both mobile clients download from."""
    sc = SwarmScenario(
        seed=seed, file_size=64 * 1024 * 1024, piece_length=131_072,
        tracker_interval=60.0,
    )
    competitor_cfg = ClientConfig(
        unchoke_slots=2, optimistic_every=5, choke_interval=5.0,
        ledger_half_life=120.0,
    )
    for i in range(2):
        sc.add_wired_peer(f"s{i}", complete=True, up_rate=80_000, config=competitor_cfg)
    for i in range(6):
        sc.add_wired_peer(f"c{i}", up_rate=60_000, config=competitor_cfg)
    # The default client's task re-initiation (teardown, resume hash-check,
    # re-announce) costs real time; wP2P's role reversal skips all of it.
    default_cfg = ClientConfig(
        unchoke_slots=2, choke_interval=5.0, task_restart_delay=15.0
    )
    default = sc.add_wireless_peer("default", rate=400_000, config=default_cfg)
    wcfg = ia_config(unchoke_slots=2, choke_interval=5.0)
    wp2p = sc.add_wireless_peer(
        "wp2p", rate=400_000, config=wcfg, client_factory=WP2PClient
    )
    sc.add_mobility(default, interval=handoff_interval, downtime=1.0, jitter=5.0)
    sc.add_mobility(wp2p, interval=handoff_interval, downtime=1.0, jitter=5.0)
    return sc, default, wp2p


@scenario
class Fig8B(Scenario):
    """Identity retention under periodic IP changes (Figure 8(b))."""

    name = "fig8b"
    description = "Figure 8(b): identity retention vs restarts under mobility"
    defaults = {
        "duration": 300.0,
        "handoff_interval": 60.0,
        "sample_step": 20.0,
        "runs": 2,
        "base_seed": 850,
    }

    @staticmethod
    def _grid(p) -> List[float]:
        return [
            p["sample_step"] * i
            for i in range(int(p["duration"] / p["sample_step"]) + 1)
        ]

    def cells(self, p):
        for r in range(p["runs"]):
            yield ("run",), p["base_seed"] + r

    def run_cell(self, key, seed, p):
        grid = self._grid(p)
        sc, default, wp2p = _fig8b_swarm(seed, p["handoff_interval"])
        sc.start_all()
        sc.run(until=p["duration"])
        return {
            "default": [default.client.downloaded.value_at(t) / 1e6 for t in grid],
            "wp2p": [wp2p.client.downloaded.value_at(t) / 1e6 for t in grid],
        }

    def assemble(self, p, values, failures):
        grid = self._grid(p)
        pairs = collect(values, ("run",))
        return ExperimentResult(
            figure="Figure 8(b)",
            title="Identity retention: download progress under mobility",
            x_label="Downloading time (s)",
            y_label="Downloaded size (MB)",
            series=[
                Series("Default P2P", grid, average_runs([pair["default"] for pair in pairs])),
                Series("wP2P", grid, average_runs([pair["wp2p"] for pair in pairs])),
            ],
            paper_expectation=(
                "wP2P's curve grows faster throughout; the default client is "
                "reset to newcomer service after every IP change"
            ),
            parameters={
                "runs": p["runs"],
                "duration_s": p["duration"],
                "handoff_interval_s": p["handoff_interval"],
            },
        )


def fig8b(
    duration: float = 300.0,
    handoff_interval: float = 60.0,
    sample_step: float = 20.0,
    runs: int = 2,
    base_seed: int = 850,
) -> ExperimentResult:
    """Identity retention under periodic IP changes (Figure 8(b))."""
    return run_scenario("fig8b", {
        "duration": duration, "handoff_interval": handoff_interval,
        "sample_step": sample_step, "runs": runs, "base_seed": base_seed,
    })


def _fig8c_run(seed: int, bandwidth: float, use_lihd: bool, duration: float) -> float:
    """One run: the mobile leech's download rate (bytes/s)."""
    sc = SwarmScenario(seed=seed, file_size=8 * 1024 * 1024, piece_length=65_536)
    n = sc.torrent.num_pieces

    rng = _random.Random(seed * 31 + 7)
    # Remote capacities comfortably exceed the swept channel rates, so the
    # mobile host's *channel* — and how its uploads contend on it — is the
    # binding resource across the whole sweep, as on the paper's testbed.
    competitor_cfg = ClientConfig(unchoke_slots=1, optimistic_every=3, choke_interval=5.0)
    sc.add_wired_peer("s0", complete=True, up_rate=150_000, config=competitor_cfg)
    for i in range(8):
        sc.add_wired_peer(
            f"c{i}",
            initial_pieces=random_piece_subset(rng, n, 0.5),
            up_rate=40_000.0 + 15_000.0 * i,
            config=competitor_cfg,
        )
    mine = random_piece_subset(rng, n, 0.4)
    if use_lihd:
        wcfg = WP2PConfig(
            am_enabled=False,
            mobility_aware_fetching=False,
            identity_retention=False,
            role_reversal=False,
            lihd_u_max=bandwidth,
            lihd_interval=5.0,
            unchoke_slots=6,
            choke_interval=5.0,
        )
        x = sc.add_wireless_peer(
            "x", rate=bandwidth, initial_pieces=mine, config=wcfg,
            client_factory=WP2PClient, ap_queue_packets=20,
        )
    else:
        cfg = ClientConfig(unchoke_slots=6, choke_interval=5.0, upload_limit=None)
        x = sc.add_wireless_peer(
            "x", rate=bandwidth, initial_pieces=mine, config=cfg,
            ap_queue_packets=20,
        )
    sc.start_all()
    warmup = 10.0
    sc.run(until=warmup)
    base = x.client.downloaded.total
    sc.run(until=warmup + duration)
    return (x.client.downloaded.total - base) / duration


@scenario
class Fig8C(Scenario):
    """LIHD upload-rate control vs uncapped default (Figure 8(c))."""

    name = "fig8c"
    description = "Figure 8(c): LIHD upload adaptation vs channel bandwidth"
    defaults = {
        "bandwidths": [50_000.0, 100_000.0, 150_000.0, 200_000.0],
        "runs": 3,
        "duration": 60.0,
        "base_seed": 900,
    }

    def cells(self, p):
        for variant in ("default", "lihd"):
            for bw in p["bandwidths"]:
                for r in range(p["runs"]):
                    yield (variant, bw), p["base_seed"] + r

    def run_cell(self, key, seed, p):
        variant, bw = key
        return _fig8c_run(seed, bw, use_lihd=(variant == "lihd"), duration=p["duration"])

    def assemble(self, p, values, failures):
        def sweep(variant: str, label: str) -> Series:
            ys: List[float] = []
            errs: List[float] = []
            for bw in p["bandwidths"]:
                vals = collect(values, (variant, bw))
                ys.append(sum(vals) / len(vals) / 1000.0)
                errs.append(summarize([v / 1000.0 for v in vals]).ci95)
            return Series(label, [bw / 1000 for bw in p["bandwidths"]], ys, y_err=errs)

        return ExperimentResult(
            figure="Figure 8(c)",
            title="LIHD upload-rate adaptation vs physical wireless bandwidth",
            x_label="Physical wireless bandwidth (KB/s)",
            y_label="Downloading throughput (KB/s)",
            series=[sweep("default", "Default P2P"), sweep("lihd", "wP2P")],
            paper_expectation=(
                "both rise with bandwidth initially; beyond a point the default "
                "client loses throughput to upload self-contention while wP2P "
                "keeps gaining (up to ~70% better at 200 KB/s)"
            ),
            parameters={"runs": p["runs"], "duration_s": p["duration"]},
        )


def fig8c(
    bandwidths: Sequence[float] = (50_000.0, 100_000.0, 150_000.0, 200_000.0),
    runs: int = 3,
    duration: float = 60.0,
    base_seed: int = 900,
) -> ExperimentResult:
    """LIHD upload-rate control vs uncapped default (Figure 8(c))."""
    return run_scenario("fig8c", {
        "bandwidths": list(bandwidths), "runs": runs,
        "duration": duration, "base_seed": base_seed,
    })
