"""Content codecs: pluggable completion semantics for the piece pipeline.

A *content codec* decides what "having the content" means in terms of
verified pieces.  :class:`ReplicationCodec` is plain BitTorrent — every
piece is unique payload, the content is complete when the bitfield is
full.  :class:`GroupCodec` simulates k-of-n erasure coding in the style
of PeerDAS data-availability columns: consecutive groups of ``n`` coded
pieces each carry ``k`` pieces worth of source payload, and *any* ``k``
of the ``n`` reconstruct the group.  No Galois-field arithmetic is
performed — the simulation only needs group-completion semantics, piece
counts, and sizes.

Codecs are deliberately decoupled from :mod:`repro.bittorrent`: they
duck-type the ``Torrent`` they are bound to (``num_pieces``,
``piece_size``, ``total_size``), so this module imports nothing from the
protocol layer and can be used by the fluid tier and analysis code
alike.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Union

#: Default k-of-n geometry when a spec says just ``"group"``.
DEFAULT_K = 4
DEFAULT_N = 6

MODES = ("replication", "group")

#: A content spec as accepted from CLIs and APIs: a mode string
#: (``"replication"``, ``"group"``, ``"group:4/6"``), a JSON object
#: string, or a mapping.
ContentSpec = Union[str, Mapping[str, object]]


# ----------------------------------------------------------------------
# Spec parsing / canonicalisation
# ----------------------------------------------------------------------
def _parse_text(text: str) -> Mapping[str, object]:
    text = text.strip()
    if text.startswith("{"):
        value = json.loads(text)
        if not isinstance(value, dict):
            raise ValueError(f"content JSON must be an object, got {text!r}")
        return value
    if text == "replication":
        return {"mode": "replication"}
    if text == "group":
        return {"mode": "group"}
    if text.startswith("group:"):
        geometry = text[len("group:"):]
        try:
            k_text, n_text = geometry.split("/", 1)
            return {"mode": "group", "k": int(k_text), "n": int(n_text)}
        except ValueError:
            raise ValueError(
                f"bad group geometry {geometry!r} (expected K/N, e.g. group:4/6)"
            ) from None
    raise ValueError(
        f"unknown content spec {text!r} "
        f"(expected 'replication', 'group', 'group:K/N', or a JSON object)"
    )


def normalize_content(spec: ContentSpec) -> Dict[str, object]:
    """Canonicalise a content spec; raises ``ValueError`` on bad input.

    Returns ``{"mode": "replication"}`` or
    ``{"mode": "group", "k": K, "n": N}`` with validated geometry.
    """
    if isinstance(spec, str):
        spec = _parse_text(spec)
    if not isinstance(spec, Mapping):
        raise ValueError(f"content spec must be a string or mapping, got {spec!r}")
    mode = str(spec.get("mode", ""))
    if mode not in MODES:
        raise ValueError(f"unknown content mode {mode!r} (expected one of {MODES})")
    known = {"mode", "k", "n"} if mode == "group" else {"mode"}
    unknown = sorted(set(spec) - known)
    if unknown:
        raise ValueError(f"unknown content key(s) {unknown} for mode {mode!r}")
    if mode == "replication":
        return {"mode": "replication"}
    k = int(spec.get("k", DEFAULT_K))
    n = int(spec.get("n", DEFAULT_N))
    if n < 2 or not 1 <= k <= n:
        raise ValueError(f"bad group geometry k={k} n={n} (need 1 <= k <= n, n >= 2)")
    return {"mode": "group", "k": k, "n": n}


def content_is_default(content: Optional[Mapping[str, object]]) -> bool:
    """True when ``content`` means plain replication (today's behaviour)."""
    if content is None:
        return True
    return str(content.get("mode", "replication")) == "replication"


def content_label(content: Optional[Mapping[str, object]]) -> str:
    """Short human label: ``replication`` or ``group:K/N``."""
    if content_is_default(content):
        return "replication"
    assert content is not None
    return f"group:{content['k']}/{content['n']}"


def coded_file_size(source_size: int, k: int, n: int) -> int:
    """Wire size of the coded object carrying ``source_size`` payload bytes.

    k-of-n coding expands the object by ``n/k``; downloading any k/n of
    it therefore moves the same byte volume as fetching the replication
    source — which keeps coded-vs-replication sweeps volume-fair.
    """
    if not 1 <= k <= n:
        raise ValueError(f"bad geometry k={k} n={n}")
    return -(-source_size * n // k)


def custody_column(num_pieces: int, column: int, custodians: int) -> List[int]:
    """Piece indices custody node ``column`` of ``custodians`` holds.

    The PeerDAS-style subset-seeding layout: piece ``i`` is assigned to
    custodian ``i % custodians``, so the custodians jointly cover every
    index exactly once and each holds an interleaved column.
    """
    if custodians <= 0:
        raise ValueError("custodians must be positive")
    if not 0 <= column < custodians:
        raise ValueError(f"column {column} out of range for {custodians} custodians")
    return [i for i in range(num_pieces) if i % custodians == column]


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------
class ReplicationCodec:
    """Plain BitTorrent semantics: every piece is unique source payload."""

    #: Trivial codecs leave the piece pipeline on its historical fast
    #: path — :class:`~repro.bittorrent.piece_manager.PieceManager` does
    #: zero group bookkeeping and produces byte-identical cell digests.
    trivial = True
    mode = "replication"

    def __init__(self, torrent) -> None:
        self.torrent = torrent

    @property
    def source_size(self) -> int:
        return self.torrent.total_size

    def is_complete(self, bitfield) -> bool:
        return bitfield.complete

    def describe(self) -> Dict[str, object]:
        return {"mode": "replication"}

    def __repr__(self) -> str:
        return "ReplicationCodec()"


class GroupCodec:
    """Simulated k-of-n erasure coding over consecutive piece groups.

    The torrent's pieces are partitioned into ``ceil(num_pieces / n)``
    consecutive groups.  A full group of ``n`` coded pieces carries
    ``k`` pieces worth of source payload and is *decodable* from any
    ``k`` of its members.  A short tail group of ``s < n`` pieces
    requires ``min(k, s)`` members (it carries proportionally less
    payload).
    """

    trivial = False
    mode = "group"

    def __init__(self, torrent, k: int = DEFAULT_K, n: int = DEFAULT_N) -> None:
        if n < 2 or not 1 <= k <= n:
            raise ValueError(f"bad group geometry k={k} n={n} (need 1 <= k <= n, n >= 2)")
        self.torrent = torrent
        self.k = k
        self.n = n
        num_pieces = torrent.num_pieces
        self.num_groups = -(-num_pieces // n)
        self._required: List[int] = []
        self._source_bytes: List[int] = []
        for group in range(self.num_groups):
            lo = group * n
            hi = min(lo + n, num_pieces)
            required = min(k, hi - lo)
            self._required.append(required)
            # What decoding yields: `required` pieces worth of payload.
            # All pieces are piece_length except possibly the very last,
            # so summing the first `required` in-group sizes is exact.
            self._source_bytes.append(
                sum(torrent.piece_size(i) for i in range(lo, lo + required))
            )
        self.source_size = sum(self._source_bytes)

    # -- geometry ------------------------------------------------------
    def group_of(self, index: int) -> int:
        return index // self.n

    def group_indices(self, group: int) -> range:
        lo = group * self.n
        return range(lo, min(lo + self.n, self.torrent.num_pieces))

    def required(self, group: int) -> int:
        """Coded pieces needed to decode ``group`` (k, or tail size)."""
        return self._required[group]

    def group_source_bytes(self, group: int) -> int:
        """Source payload bytes group ``group`` decodes to."""
        return self._source_bytes[group]

    # -- decoding semantics -------------------------------------------
    def reconstructs(self, group: int, indices: Iterable[int]) -> bool:
        """True when the held coded pieces ``indices`` decode ``group``.

        The simulated-coding law: any ``required(group)`` *distinct*
        in-group pieces reconstruct; fewer never do.
        """
        members = set(self.group_indices(group))
        held = len(members.intersection(indices))
        return held >= self._required[group]

    def group_counts(self, bitfield) -> List[int]:
        """Held coded pieces per group, recomputed from ``bitfield``."""
        counts = [0] * self.num_groups
        for index in bitfield.indices():
            counts[index // self.n] += 1
        return counts

    def decodable_groups(self, bitfield) -> List[bool]:
        counts = self.group_counts(bitfield)
        return [c >= r for c, r in zip(counts, self._required)]

    def is_complete(self, bitfield) -> bool:
        """Content complete: every group decodable (not: bitfield full)."""
        return all(self.decodable_groups(bitfield))

    def decoded_bytes(self, bitfield) -> int:
        """Source payload recoverable from ``bitfield`` right now."""
        return sum(
            size
            for size, ok in zip(self._source_bytes, self.decodable_groups(bitfield))
            if ok
        )

    def describe(self) -> Dict[str, object]:
        return {
            "mode": "group",
            "k": self.k,
            "n": self.n,
            "num_groups": self.num_groups,
        }

    def __repr__(self) -> str:
        return f"GroupCodec(k={self.k}, n={self.n}, groups={self.num_groups})"


def make_codec(content: Optional[ContentSpec], torrent):
    """Build the codec a normalised (or raw) content spec describes.

    ``None`` or a replication spec yields :class:`ReplicationCodec`.
    """
    if content is None:
        return ReplicationCodec(torrent)
    normalized = normalize_content(content)
    if content_is_default(normalized):
        return ReplicationCodec(torrent)
    return GroupCodec(torrent, k=int(normalized["k"]), n=int(normalized["n"]))
