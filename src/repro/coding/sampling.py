"""Probabilistic data-availability sampling for coded swarms.

PeerDAS-style availability checks: instead of tracking every peer's
full bitfield, a node periodically probes a few *random* coded indices
per group against what it can see (its own verified pieces plus the
advertised bitfields of its connected peers) and keeps a per-group
availability estimate.  The estimates surface through :mod:`repro.obs`
as ``coding.*`` metrics and one ``sample_sweep`` trace event per sweep,
so chaos experiments can watch group availability erode under churn
before swarms actually stall.

All randomness comes from the dedicated per-client RNG stream
``coding.sample.<name>``, so sampling never perturbs protocol streams
and sweeps are bit-reproducible.
"""

from __future__ import annotations

from typing import Dict

from ..sim import PeriodicTask

DEFAULT_INTERVAL = 10.0
DEFAULT_SAMPLES_PER_GROUP = 4


class AvailabilitySampler:
    """Periodic per-group availability estimation at one coded client.

    A probe of index ``i`` succeeds when the client holds piece ``i`` or
    any connected peer advertises it.  The per-group estimate is the
    success fraction of this sweep's probes — deliberately a *sample*,
    not a census, to mirror real DAS cost constraints.
    """

    def __init__(
        self,
        client,
        interval: float = DEFAULT_INTERVAL,
        samples_per_group: int = DEFAULT_SAMPLES_PER_GROUP,
    ) -> None:
        codec = client.manager.codec
        if codec.trivial:
            raise ValueError("availability sampling needs a grouped codec")
        self.client = client
        self.codec = codec
        self.samples_per_group = samples_per_group
        self.sweeps = 0
        #: Latest per-group availability estimate in [0, 1].
        self.group_estimates: Dict[int, float] = {}
        self._rng = client.sim.rng.stream(f"coding.sample.{client.name}")
        self._task = PeriodicTask(client.sim, interval, self.sweep)

    def start(self) -> None:
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    def sweep(self) -> None:
        """Probe every group once; update estimates, metrics and trace."""
        client = self.client
        codec = self.codec
        bitfield = client.manager.bitfield
        availability = client.availability
        samples = self.samples_per_group
        total = 0.0
        worst = 1.0
        for group in range(codec.num_groups):
            members = codec.group_indices(group)
            span = len(members)
            hits = 0
            for _ in range(samples):
                index = members[self._rng.randrange(span)]
                if bitfield.has(index) or availability.get(index, 0) > 0:
                    hits += 1
            estimate = hits / samples
            self.group_estimates[group] = estimate
            total += estimate
            if estimate < worst:
                worst = estimate
        self.sweeps += 1
        mean = total / codec.num_groups
        metrics = client.sim.metrics
        metrics.counter("coding.samples").add(samples * codec.num_groups)
        metrics.gauge("coding.availability_mean").set(mean)
        metrics.gauge("coding.availability_min").set(worst)
        trace = client.sim.trace
        if trace.enabled:
            trace.event(
                "coding", "sample_sweep", client=client.name,
                mean=round(mean, 4), min=round(worst, 4),
                groups=codec.num_groups,
            )
