"""repro.coding — erasure-coded content as a selectable protocol variant.

The paper's answer to piece starvation under mobile churn is MA
fetching, a piece-*selection* tweak.  This package adds the modern
availability answer instead: k-of-n erasure-coded piece groups
(PeerDAS-style), custody-style subset seeding, and sampling-based
availability estimation — selectable next to rarest-first/sequential/MA
through a ``content`` axis that threads the spec/runner/CLI stack just
like ``backend`` and ``strategies``.

Two ways to use it, mirroring :mod:`repro.chaos`:

Explicitly, on one scenario::

    swarm = SwarmScenario(seed=7, content={"mode": "group", "k": 4, "n": 6})

Globally, for code that builds scenarios internally — the pattern the
CLI's ``--content`` flag and the :class:`~repro.runner.Runner` use::

    from repro import coding

    coding.install("group:4/6")
    try:
        run_scenario(...)       # every new SwarmScenario codes its content
    finally:
        coding.uninstall()

Content is **replication by default** — the default codec keeps the
piece pipeline on its historical fast path and cell digests
byte-identical to the pre-codec era.
"""

from __future__ import annotations

from typing import Dict, Optional

from .codec import (
    DEFAULT_K,
    DEFAULT_N,
    MODES,
    ContentSpec,
    GroupCodec,
    ReplicationCodec,
    coded_file_size,
    content_is_default,
    content_label,
    custody_column,
    make_codec,
    normalize_content,
)
from .sampling import AvailabilitySampler

__all__ = [
    "AvailabilitySampler",
    "ContentSpec",
    "DEFAULT_K",
    "DEFAULT_N",
    "GroupCodec",
    "MODES",
    "ReplicationCodec",
    "ambient_content",
    "coded_file_size",
    "content_is_default",
    "content_label",
    "custody_column",
    "install",
    "installed",
    "make_codec",
    "normalize_content",
    "uninstall",
]


# ----------------------------------------------------------------------
# Global default: every new SwarmScenario gets the installed content
# mode (the worker-process hook behind Runner(content=...)).
# ----------------------------------------------------------------------
_default_content: Optional[Dict[str, object]] = None


def install(content: ContentSpec) -> None:
    """Give every *new* scenario this content mode until :func:`uninstall`.

    The spec is validated eagerly; installing plain replication is a
    no-op mode (scenarios treat it as the default pipeline).
    """
    global _default_content
    _default_content = normalize_content(content)


def uninstall() -> None:
    """Stop injecting a content mode into new scenarios."""
    global _default_content
    _default_content = None


def installed() -> bool:
    """True when new scenarios get a non-default content mode."""
    return _default_content is not None and not content_is_default(_default_content)


def ambient_content() -> Optional[Dict[str, object]]:
    """The installed canonical content spec, or None."""
    return dict(_default_content) if _default_content is not None else None
