"""repro.audit — runtime cross-layer invariant auditing.

The correctness analogue of :mod:`repro.obs`: where tracing *records*
what a simulation did, auditing *asserts* what must always hold while it
does it — byte conservation through every queue and link, token buckets
within ``[0, burst]``, a time-monotonic event queue, mutually consistent
piece/bitfield/ledger state, and legal wP2P state-machine transitions.
See :mod:`repro.audit.checkers` for the full catalogue of laws.

Two ways to use it:

Explicitly, on one simulator (attach **before** building the topology,
because components register themselves at construction)::

    from repro.audit import Auditor

    sim = Simulator(seed=1)
    auditor = Auditor().attach(sim)
    ...build and run...
    auditor.sweep()          # also runs automatically during run()

Globally, for code that builds its simulators internally — the pattern
the CLI's ``--audit`` flag and the :class:`~repro.runner.Runner` use::

    from repro import audit

    audit.install()          # every new Simulator gets an Auditor
    try:
        run_transfer(seed=3, ber=1e-5, bidirectional=True)
    finally:
        audit.uninstall()

or equivalently ``with audit.audited(): ...``.  Auditing is **off by
default** and costs one ``is None`` check per event / per instrumented
constructor when off.  When on, a failed invariant raises
:class:`AuditViolation` at the exact simulated moment the inconsistency
is observed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from .auditor import AuditViolation, Auditor, Violation

__all__ = [
    "AuditViolation",
    "Auditor",
    "Violation",
    "apply_defaults",
    "audited",
    "install",
    "installed",
    "uninstall",
]


# ----------------------------------------------------------------------
# Global defaults: every new Simulator gets its own Auditor.
# ----------------------------------------------------------------------
_default_options: Optional[Dict[str, object]] = None
_auditors: List[Auditor] = []


def install(
    raise_on_violation: bool = True,
    sweep_interval: int = 256,
    max_violations: int = 1000,
) -> None:
    """Audit every *new* simulator until :func:`uninstall`.

    Each simulator created while installed gets its **own**
    :class:`Auditor` (invariants are per-run; auditors never outlive
    their topology).  Already-created simulators are unaffected.
    """
    global _default_options
    _default_options = {
        "raise_on_violation": raise_on_violation,
        "sweep_interval": sweep_interval,
        "max_violations": max_violations,
    }
    _auditors.clear()


def uninstall() -> None:
    """Stop auditing new simulators (attached auditors keep working).

    The created-auditor list survives until the next :func:`install`, so
    ``with audited(...) as auditors:`` blocks can inspect violations
    after the context exits.
    """
    global _default_options
    _default_options = None


def installed() -> bool:
    """True when new simulators are being audited."""
    return _default_options is not None


def auditors() -> List[Auditor]:
    """Auditors created for simulators built since :func:`install`."""
    return list(_auditors)


def apply_defaults(sim) -> Optional[Auditor]:
    """Kernel hook: attach a fresh auditor to ``sim`` when installed."""
    if _default_options is None:
        return None
    auditor = Auditor(**_default_options).attach(sim)
    _auditors.append(auditor)
    return auditor


@contextmanager
def audited(**options) -> Iterator[List[Auditor]]:
    """Audit every simulator created inside the block.

    Yields the (live) list of created auditors, so callers running in
    collect mode (``raise_on_violation=False``) can inspect
    ``auditor.violations`` afterwards.
    """
    install(**options)
    try:
        yield _auditors
    finally:
        uninstall()
