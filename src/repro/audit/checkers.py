"""The invariant checkers: conservation laws as generator functions.

Each checker inspects one component (or a pair) and yields one human-
readable message per violated invariant; an empty iteration means the
component is consistent.  Checkers are pure inspection — they never
mutate simulation state beyond idempotent lazy refills — so running a
sweep mid-simulation cannot change the run's outcome.

They are deliberately duck-typed and import the instrumented layers
lazily (inside the function bodies): :mod:`repro.audit` must stay
import-light so the kernel can depend on it without cycles.

The laws, layer by layer:

``net`` (queues, wired link directions, the wireless channel)
    Packets and bytes are conserved: everything enqueued is either still
    queued, dequeued, or was explicitly cleared; everything dequeued by a
    transmitter was sent, is in flight, or was recorded as a loss.
``bittorrent`` (token buckets, piece manager, availability, ledger)
    Token buckets stay within ``[0, burst]``; the piece bitfield, byte
    counter, partial-piece states and availability map agree with each
    other; a ledger never credits more bytes than the counterpart peer
    actually delivered.
``tcp`` (per connection and per connection *pair*)
    Sequence-space sanity (``una <= nxt <= end``), RTO clamping, and the
    cross-host law that a receiver can never be ahead of what its sender
    transmitted.
``wp2p`` (AM / IA state machines)
    AM flow status always matches the congestion-window estimate against
    γ; LIHD's upload cap stays inside ``[u_floor, u_max]`` and is what
    the client's token bucket actually enforces.
"""

from __future__ import annotations

from typing import Iterator

#: Absolute slack for float byte/second accounting.
EPS = 1e-6


# ----------------------------------------------------------------------
# net layer
# ----------------------------------------------------------------------
def check_queue(q) -> Iterator[str]:
    """Packet and byte conservation for one :class:`DropTailQueue`."""
    if q.enqueued != q.dequeued + q.depth_packets + q.cleared:
        yield (
            f"queue {q.name}: packet conservation broken — "
            f"enqueued={q.enqueued} != dequeued={q.dequeued} "
            f"+ depth={q.depth_packets} + cleared={q.cleared}"
        )
    if q.bytes_enqueued != q.bytes_dequeued + q.depth_bytes + q.cleared_bytes:
        yield (
            f"queue {q.name}: byte conservation broken — "
            f"bytes_enqueued={q.bytes_enqueued} != "
            f"bytes_dequeued={q.bytes_dequeued} + depth={q.depth_bytes} "
            f"+ cleared={q.cleared_bytes}"
        )
    if q.depth_bytes < 0:
        yield f"queue {q.name}: negative byte depth {q.depth_bytes}"
    if q.depth_packets > q.capacity_packets:
        yield (
            f"queue {q.name}: depth {q.depth_packets} exceeds capacity "
            f"{q.capacity_packets}"
        )


def check_direction(d) -> Iterator[str]:
    """One wired link direction: dequeued packets are sent or in flight."""
    in_flight = 1 if d._busy else 0
    if d.queue.dequeued != d.packets_sent + in_flight:
        yield (
            f"link {d.queue.name}: dequeued={d.queue.dequeued} != "
            f"packets_sent={d.packets_sent} + in_flight={in_flight}"
        )
    pending = d.queue.bytes_dequeued - d.bytes_sent
    if pending < 0:
        yield (
            f"link {d.queue.name}: sent more bytes ({d.bytes_sent}) than "
            f"ever dequeued ({d.queue.bytes_dequeued})"
        )
    if not d._busy and pending != 0:
        yield (
            f"link {d.queue.name}: idle with {pending} dequeued-but-unsent "
            f"bytes"
        )


def check_channel(ch) -> Iterator[str]:
    """The wireless cell: frames and bytes across both directions."""
    uq, dq = ch.uplink_queue, ch.downlink_queue
    in_flight = 1 if ch._busy else 0
    frames = ch.frames_up + ch.frames_down
    if uq.dequeued + dq.dequeued != frames + in_flight:
        yield (
            f"channel {ch.name}: dequeued={uq.dequeued + dq.dequeued} != "
            f"frames_tx={frames} + in_flight={in_flight}"
        )
    lost_bytes = sum(r.size_bytes for r in ch.loss_records)
    if ch.frames_lost != len(ch.loss_records):
        yield (
            f"channel {ch.name}: frames_lost={ch.frames_lost} != "
            f"{len(ch.loss_records)} loss records"
        )
    pending = (
        uq.bytes_dequeued + dq.bytes_dequeued
        - ch.bytes_up - ch.bytes_down - lost_bytes
    )
    if pending < 0:
        yield (
            f"channel {ch.name}: delivered+lost bytes exceed dequeued "
            f"bytes by {-pending}"
        )
    if not ch._busy and pending != 0:
        yield (
            f"channel {ch.name}: idle with {pending} dequeued bytes "
            f"neither delivered nor recorded lost"
        )
    if len(ch._up_order) != uq.depth_packets:
        yield (
            f"channel {ch.name}: uplink arrival order holds "
            f"{len(ch._up_order)} tickets but {uq.depth_packets} packets "
            f"are queued (leak or loss)"
        )
    if len(ch._down_order) != dq.depth_packets:
        yield (
            f"channel {ch.name}: downlink arrival order holds "
            f"{len(ch._down_order)} tickets but {dq.depth_packets} packets "
            f"are queued (leak or loss)"
        )


# ----------------------------------------------------------------------
# bittorrent layer
# ----------------------------------------------------------------------
def check_bucket(b) -> Iterator[str]:
    """Token bucket: tokens always within ``[0, burst]``, sane config."""
    tokens = b.tokens  # lazy refill is idempotent: same value either way
    if tokens < -EPS:
        yield f"token bucket: negative balance {tokens}"
    if tokens > b.burst + EPS:
        yield f"token bucket: {tokens} tokens exceed burst {b.burst}"
    if b.burst < 0:
        yield f"token bucket: negative burst {b.burst}"
    if b.rate is not None and b.rate < 0:
        yield f"token bucket: negative rate {b.rate}"


def check_connection(conn) -> Iterator[str]:
    """Per-connection TCP sanity (sequence space, counters, RTO)."""
    label = conn._trace_label
    snd = conn.snd
    # The FIN occupies one sequence number that snd.nxt/snd.end never
    # cover, so a half-closed connection whose FIN was acknowledged —
    # the peer vanished before sending its own FIN — legitimately rests
    # at una == old-nxt + 1 (same +1 the pair checker admits).
    una = snd.una
    if (
        conn._fin_sent
        and conn._local_fin_seq is not None
        and una == conn._local_fin_seq + 1
    ):
        una -= 1
    if not una <= snd.nxt <= snd.end:
        yield (
            f"tcp {label}: sequence disorder una={snd.una} "
            f"nxt={snd.nxt} end={snd.end}"
        )
    if snd.nxt > conn._max_sent:
        yield (
            f"tcp {label}: nxt={snd.nxt} beyond highest transmitted "
            f"sequence {conn._max_sent}"
        )
    st = conn.stats
    if st.payload_bytes_acked > st.payload_bytes_sent:
        yield (
            f"tcp {label}: acked {st.payload_bytes_acked} > sent "
            f"{st.payload_bytes_sent} payload bytes"
        )
    rtt = conn.rtt
    if rtt._backoff < 1.0:
        yield f"tcp {label}: RTO backoff multiplier {rtt._backoff} < 1"
    if not rtt.min_rto - EPS <= rtt.rto <= rtt.max_rto + EPS:
        yield (
            f"tcp {label}: rto {rtt.rto} outside "
            f"[{rtt.min_rto}, {rtt.max_rto}]"
        )


def check_connection_pair(a, b) -> Iterator[str]:
    """Cross-host law: the receiver ``b`` never runs ahead of sender ``a``.

    ``a._max_sent`` (not ``snd.nxt``) is the sender-side frontier:
    go-back-N rewinds ``nxt`` after an RTO, but what the peer may have
    received is bounded by the highest sequence ever transmitted.  The
    ``+ 1`` admits the FIN's sequence number.
    """
    if b.rcv is None:
        return
    label = f"{a._trace_label} | peer {b._trace_label}"
    if b.rcv.rcv_nxt > a._max_sent + 1:
        yield (
            f"tcp pair {label}: receiver at {b.rcv.rcv_nxt} but sender "
            f"only ever transmitted up to {a._max_sent}"
        )
    if a.snd.una > b.rcv.rcv_nxt:
        yield (
            f"tcp pair {label}: sender believes {a.snd.una} acknowledged "
            f"but receiver expects {b.rcv.rcv_nxt}"
        )
    if b.stats.payload_bytes_delivered > a.stats.payload_bytes_sent:
        yield (
            f"tcp pair {label}: {b.stats.payload_bytes_delivered} payload "
            f"bytes delivered exceed {a.stats.payload_bytes_sent} sent"
        )


def check_client(client, received_from) -> Iterator[str]:
    """Piece-manager / bitfield / availability / ledger mutual consistency.

    ``received_from`` maps a remote peer ID to the bytes this client's
    block-arrival hook actually saw from that ID (accumulated by the
    auditor); the ledger may never credit an ID beyond that.
    """
    from ..bittorrent.piece_manager import REQUESTED

    name = client.name
    manager = client.manager
    bitfield = manager.bitfield

    expected_bytes = sum(
        client.torrent.piece_size(i) for i in bitfield.indices()
    )
    if manager.bytes_completed != expected_bytes:
        yield (
            f"client {name}: bytes_completed={manager.bytes_completed} but "
            f"bitfield pieces total {expected_bytes} bytes"
        )

    have = set(bitfield.indices())
    for index, partial in manager._partials.items():
        if index in have:
            yield (
                f"client {name}: piece {index} is both complete and partial"
            )
        requested = {
            n for n, state in enumerate(partial.states) if state == REQUESTED
        }
        timed = set(partial.requested_at)
        if requested != timed:
            yield (
                f"client {name}: piece {index} REQUESTED blocks "
                f"{sorted(requested)} disagree with request timestamps "
                f"{sorted(timed)}"
            )
        if partial.complete:
            yield (
                f"client {name}: piece {index} fully held yet still partial"
            )

    expected_avail: dict = {}
    for peer in list(client.peers.values()) + list(client._pending):
        if peer.closed or not peer._bitfield_counted:
            continue
        for index in peer.peer_bitfield.indices():
            expected_avail[index] = expected_avail.get(index, 0) + 1
    actual_avail = {i: c for i, c in client.availability.items() if c != 0}
    if actual_avail != expected_avail:
        diff = {
            i: (actual_avail.get(i, 0), expected_avail.get(i, 0))
            for i in set(actual_avail) | set(expected_avail)
            if actual_avail.get(i, 0) != expected_avail.get(i, 0)
        }
        yield (
            f"client {name}: availability map out of sync with peer "
            f"bitfields (piece: (counted, actual)) {diff}"
        )

    ledger = client.ledger
    for peer_id in ledger.known_ids():
        credited = ledger.raw_credit(peer_id)
        delivered = received_from.get(peer_id, 0.0)
        if credited > delivered + EPS:
            yield (
                f"client {name}: ledger credits {credited} bytes to "
                f"{peer_id} but only {delivered} were received from it"
            )

    codec = getattr(manager, "codec", None)
    if codec is not None and not codec.trivial:
        # Grouped codec: the manager's incremental group bookkeeping must
        # agree with a from-scratch recount of the bitfield.
        counts = codec.group_counts(bitfield)
        if manager._group_have != counts:
            yield (
                f"client {name}: incremental group counts "
                f"{manager._group_have} disagree with bitfield recount "
                f"{counts}"
            )
        decodable = [c >= codec.required(g) for g, c in enumerate(counts)]
        if manager._decodable != decodable:
            yield (
                f"client {name}: decodable flags {manager._decodable} "
                f"disagree with recount {decodable}"
            )
        if manager._decodable_count != sum(decodable):
            yield (
                f"client {name}: _decodable_count="
                f"{manager._decodable_count} but {sum(decodable)} groups "
                f"are decodable"
            )
        if manager.complete != codec.is_complete(bitfield):
            yield (
                f"client {name}: manager.complete={manager.complete} but "
                f"codec.is_complete={codec.is_complete(bitfield)}"
            )
        if manager.source_bytes_decoded != codec.decoded_bytes(bitfield):
            yield (
                f"client {name}: source_bytes_decoded="
                f"{manager.source_bytes_decoded} but codec recovers "
                f"{codec.decoded_bytes(bitfield)} bytes"
            )


# ----------------------------------------------------------------------
# wp2p layer
# ----------------------------------------------------------------------
def check_am(am) -> Iterator[str]:
    """AM: every flow's YOUNG/MATURE status matches its cwnd estimate."""
    from ..wp2p.age_manipulation import MATURE, YOUNG

    for key, flow in am._flows.items():
        expected = YOUNG if flow.cwnd_estimate < am.gamma_bytes else MATURE
        if flow.status not in (YOUNG, MATURE):
            yield (
                f"am {am.host.name} flow {key}: illegal status "
                f"{flow.status!r}"
            )
        elif flow.status != expected:
            yield (
                f"am {am.host.name} flow {key}: status {flow.status!r} but "
                f"cwnd_estimate={flow.cwnd_estimate} vs "
                f"gamma={am.gamma_bytes} implies {expected!r}"
            )
        if flow.dupack_count < 0:
            yield (
                f"am {am.host.name} flow {key}: negative dupack count "
                f"{flow.dupack_count}"
            )
    if am.dupacks_dropped > am.dupacks_seen:
        yield (
            f"am {am.host.name}: dropped {am.dupacks_dropped} dupacks but "
            f"only saw {am.dupacks_seen}"
        )


def check_lihd(lihd) -> Iterator[str]:
    """LIHD: the cap stays in band and the bucket enforces exactly it."""
    if not lihd.running:
        return
    name = lihd.client.name
    if not lihd.u_floor - EPS <= lihd.u_cur <= lihd.u_max + EPS:
        yield (
            f"lihd {name}: u_cur={lihd.u_cur} outside "
            f"[{lihd.u_floor}, {lihd.u_max}]"
        )
    bucket_rate = lihd.client.upload_bucket.rate
    if bucket_rate is None or abs(bucket_rate - lihd.u_cur) > EPS:
        yield (
            f"lihd {name}: upload bucket enforces {bucket_rate} but "
            f"controller decided {lihd.u_cur}"
        )
