"""The runtime auditor: registration, sweeps, and trace-event checks.

An :class:`Auditor` attaches to one :class:`~repro.sim.kernel.Simulator`
and watches it from three angles at once:

* **Kernel hook** — the event loop calls :meth:`Auditor.before_event`
  for every dispatched event (only when an auditor is attached; an
  unaudited run pays one ``is None`` test per event).  The hook asserts
  event-queue time monotonicity and, every ``sweep_interval`` events,
  runs a full invariant sweep.
* **Component sweeps** — instrumented components register themselves at
  construction (``sim.audit is not None`` is the whole cost when off);
  a sweep runs every checker in :mod:`repro.audit.checkers` over every
  registered queue, link direction, wireless channel, token bucket, TCP
  connection (and its counterpart), BitTorrent client, AM filter, and
  LIHD controller.  A final sweep runs when :meth:`Simulator.run`
  returns.
* **Trace sink** — the auditor is also a
  :class:`~repro.obs.tracing.TraceSink` attached to ``sim.trace``, so it
  validates the structured event stream itself: timestamps never go
  backwards, per-client download progress never regresses, announces
  never report negative bytes left, and the wP2P AM / MA / LIHD state
  machines only ever report legal transitions.

A failed invariant raises :class:`AuditViolation` (default), which
surfaces through the runner as an ordinary cell failure, or — with
``raise_on_violation=False`` — is collected on :attr:`Auditor.violations`
for the alarm-ring tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.tracing import TraceRecord, TraceSink
from . import checkers

#: Slack when comparing simulated timestamps.
TIME_EPS = 1e-9

_LEGAL_AM_STATUS = ("young", "mature")
_LEGAL_MA_MODES = ("rarest", "sequential")
_LEGAL_LIHD_DECISIONS = ("hold", "increase", "decrease")


@dataclass
class Violation:
    """One failed invariant."""

    time: float
    checker: str
    message: str

    def __str__(self) -> str:
        return f"[t={self.time:.6f}] {self.checker}: {self.message}"


class AuditViolation(AssertionError):
    """Raised when an invariant fails and the auditor is in raise mode."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


class Auditor(TraceSink):
    """Cross-layer invariant watchdog for one simulator.

    >>> sim = Simulator(seed=1)          # doctest: +SKIP
    >>> auditor = Auditor().attach(sim)  # doctest: +SKIP
    >>> ...build topology, run...        # doctest: +SKIP
    >>> auditor.sweep()                  # doctest: +SKIP

    Attach **before** building the topology: components register with
    ``sim.audit`` in their constructors.  (The :func:`repro.audit.install`
    globals do this automatically for every new simulator.)
    """

    def __init__(
        self,
        raise_on_violation: bool = True,
        sweep_interval: int = 256,
        max_violations: int = 1000,
    ) -> None:
        if sweep_interval <= 0:
            raise ValueError("sweep_interval must be positive")
        self.raise_on_violation = raise_on_violation
        self.sweep_interval = sweep_interval
        self.max_violations = max_violations
        self.violations: List[Violation] = []
        self.sweeps = 0
        self.events_seen = 0

        self.sim = None
        self._clock: Callable[[], float] = lambda: 0.0
        self._last_event_time: Optional[float] = None
        self._last_trace_time: Optional[float] = None

        # Registered components, by layer.
        self.queues: List[object] = []
        self.directions: List[object] = []
        self.channels: List[object] = []
        self.buckets: List[object] = []
        self.connections: List[object] = []
        self.clients: List[object] = []
        self.ams: List[object] = []
        self.lihds: List[object] = []
        self._conn_index: Dict[Tuple[str, int, str, int], object] = {}

        # Cross-client transfer accounting (block conservation).
        # (uploader peer ID, downloader peer ID) -> bytes, at the moment
        # the uploader queued / the downloader received the block.
        self._blocks_sent: Dict[Tuple[str, str], float] = {}
        self._blocks_received: Dict[Tuple[str, str], float] = {}
        # id(client) -> {remote peer ID -> bytes received from it}; what
        # the ledger check compares raw credit against.
        self._received_from: Dict[int, Dict[str, float]] = {}

        # Trace-stream state machines.
        self._progress: Dict[str, float] = {}
        self._am_status: Dict[Tuple[str, str], str] = {}
        self._ma_mode: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, sim) -> "Auditor":
        """Bind to ``sim``: kernel hook, trace sink, component registry."""
        if self.sim is not None:
            raise RuntimeError("auditor is already attached")
        if sim.audit is not None:
            raise RuntimeError("simulator already has an auditor attached")
        self.sim = sim
        self._clock = lambda: sim.now
        sim.audit = self
        sim.trace.attach(self)
        return self

    def detach(self) -> None:
        """Unbind from the simulator (keeps collected violations)."""
        if self.sim is None:
            return
        if self.sim.audit is self:
            self.sim.audit = None
        self.sim.trace.detach(self)
        self.sim = None
        self._clock = lambda: 0.0

    # ------------------------------------------------------------------
    # Component registration (called from constructors)
    # ------------------------------------------------------------------
    def register_queue(self, queue) -> None:
        self.queues.append(queue)

    def register_direction(self, direction) -> None:
        self.directions.append(direction)
        self.queues.append(direction.queue)

    def register_channel(self, channel) -> None:
        self.channels.append(channel)
        self.queues.append(channel.uplink_queue)
        self.queues.append(channel.downlink_queue)

    def register_bucket(self, bucket) -> None:
        self.buckets.append(bucket)

    def register_connection(self, conn) -> None:
        self.connections.append(conn)
        self._conn_index[
            (conn.local_ip, conn.local_port, conn.remote_ip, conn.remote_port)
        ] = conn

    def register_client(self, client) -> None:
        self.clients.append(client)
        self._received_from.setdefault(id(client), {})

    def register_am(self, am) -> None:
        self.ams.append(am)

    def register_lihd(self, lihd) -> None:
        self.lihds.append(lihd)

    # ------------------------------------------------------------------
    # Transfer accounting hooks (called from the client's data path)
    # ------------------------------------------------------------------
    def note_block_sent(self, client, remote_id: Optional[str], nbytes: int) -> None:
        """An uploader queued ``nbytes`` of piece data toward ``remote_id``."""
        if remote_id is None:
            return
        key = (client.peer_id, remote_id)
        self._blocks_sent[key] = self._blocks_sent.get(key, 0.0) + nbytes

    def note_block_received(self, client, remote_id: Optional[str], nbytes: int) -> None:
        """A downloader received ``nbytes`` of piece data from ``remote_id``."""
        if remote_id is None:
            return
        key = (remote_id, client.peer_id)
        self._blocks_received[key] = self._blocks_received.get(key, 0.0) + nbytes
        per_client = self._received_from.setdefault(id(client), {})
        per_client[remote_id] = per_client.get(remote_id, 0.0) + nbytes

    # ------------------------------------------------------------------
    # Kernel hook
    # ------------------------------------------------------------------
    def before_event(self, event_time: float) -> None:
        """Called by the kernel for every event about to be dispatched."""
        last = self._last_event_time
        if last is not None and event_time < last - TIME_EPS:
            self.report(
                "sim.event_monotonic",
                f"event queue went backwards: dispatching t={event_time} "
                f"after t={last}",
            )
        self._last_event_time = event_time
        self.events_seen += 1
        if self.events_seen % self.sweep_interval == 0:
            self.sweep()

    def on_run_end(self) -> None:
        """Called by the kernel when a :meth:`run` returns: final sweep."""
        self.sweep()

    # ------------------------------------------------------------------
    # Sweeping
    # ------------------------------------------------------------------
    def sweep(self) -> None:
        """Run every registered checker once, reporting all violations."""
        self.sweeps += 1
        for queue in self.queues:
            self._run(checkers.check_queue, "net.queue", queue)
        for direction in self.directions:
            self._run(checkers.check_direction, "net.link", direction)
        for channel in self.channels:
            self._run(checkers.check_channel, "net.wireless", channel)
        for bucket in self.buckets:
            self._run(checkers.check_bucket, "bittorrent.bucket", bucket)
        self._sweep_connections()
        self._sweep_clients()
        for am in self.ams:
            self._run(checkers.check_am, "wp2p.am", am)
        for lihd in self.lihds:
            self._run(checkers.check_lihd, "wp2p.lihd", lihd)

    def _run(self, checker, name: str, *components) -> None:
        for message in checker(*components):
            self.report(name, message)

    def _sweep_connections(self) -> None:
        live = [c for c in self.connections if not c._finished]
        if len(live) != len(self.connections):
            self.connections = live
            self._conn_index = {
                (c.local_ip, c.local_port, c.remote_ip, c.remote_port): c
                for c in live
            }
        for conn in live:
            self._run(checkers.check_connection, "tcp.connection", conn)
            peer = self._conn_index.get(
                (conn.remote_ip, conn.remote_port, conn.local_ip, conn.local_port)
            )
            if peer is not None and not peer._finished:
                self._run(checkers.check_connection_pair, "tcp.pair", conn, peer)

    def _sweep_clients(self) -> None:
        for client in self.clients:
            self._run(
                checkers.check_client,
                "bittorrent.client",
                client,
                self._received_from.get(id(client), {}),
            )
        for key, received in self._blocks_received.items():
            sent = self._blocks_sent.get(key, 0.0)
            if received > sent + checkers.EPS:
                uploader, downloader = key
                self.report(
                    "bittorrent.transfer",
                    f"{downloader} received {received} piece bytes from "
                    f"{uploader} which only sent {sent}",
                )

    # ------------------------------------------------------------------
    # Trace-stream checks (TraceSink interface)
    # ------------------------------------------------------------------
    def write(self, record: TraceRecord) -> None:
        t = record.get("t")
        if isinstance(t, (int, float)):
            last = self._last_trace_time
            if last is not None and t < last - TIME_EPS:
                self.report(
                    "trace.time_monotonic",
                    f"trace timestamp went backwards: {t} after {last} "
                    f"({record.get('layer')}/{record.get('event')})",
                )
            self._last_trace_time = t if last is None else max(last, float(t))
        handler = self._TRACE_CHECKS.get(
            (record.get("layer"), record.get("event"))
        )
        if handler is not None:
            handler(self, record)

    def _check_announce(self, record: TraceRecord) -> None:
        left = record.get("left")
        if isinstance(left, (int, float)) and left < 0:
            self.report(
                "bittorrent.announce",
                f"client {record.get('client')} announced negative bytes "
                f"left ({left})",
            )

    def _check_piece_complete(self, record: TraceRecord) -> None:
        client = str(record.get("client"))
        progress = record.get("progress")
        if not isinstance(progress, (int, float)):
            return
        if not 0.0 <= progress <= 1.0:
            self.report(
                "bittorrent.progress",
                f"client {client} reported progress {progress} outside [0, 1]",
            )
        last = self._progress.get(client)
        if last is not None and progress < last - 1e-9:
            self.report(
                "bittorrent.progress",
                f"client {client} progress regressed from {last} to {progress}",
            )
        self._progress[client] = max(last or 0.0, float(progress))

    def _check_am_state(self, record: TraceRecord) -> None:
        status = record.get("status")
        key = (str(record.get("host")), str(record.get("flow")))
        if status not in _LEGAL_AM_STATUS:
            self.report(
                "wp2p.am", f"illegal AM status {status!r} for flow {key}"
            )
            return
        last = self._am_status.get(key)
        if last == status:
            # am_state is emitted on *transitions* only; a repeat means
            # the filter claims young->young or mature->mature.
            self.report(
                "wp2p.am",
                f"AM flow {key} reported a non-transition: {last!r} -> "
                f"{status!r}",
            )
        self._am_status[key] = str(status)

    def _check_ma_mode(self, record: TraceRecord) -> None:
        mode = record.get("mode")
        if mode not in _LEGAL_MA_MODES:
            self.report("wp2p.ma", f"illegal fetch mode {mode!r}")
            return
        owner = record.get("client")
        pr = record.get("pr")
        if isinstance(pr, (int, float)) and not 0.0 <= pr <= 1.0:
            self.report("wp2p.ma", f"fetch-mode pr {pr} outside [0, 1]")
        if owner is None:
            return  # untagged selector: cannot track per-owner flips
        last = self._ma_mode.get(str(owner))
        if last == mode:
            self.report(
                "wp2p.ma",
                f"MA selector {owner} reported a non-flip: {last!r} -> "
                f"{mode!r}",
            )
        self._ma_mode[str(owner)] = str(mode)

    def _check_lihd_update(self, record: TraceRecord) -> None:
        decision = record.get("decision")
        if decision not in _LEGAL_LIHD_DECISIONS:
            self.report(
                "wp2p.lihd",
                f"client {record.get('client')} illegal LIHD decision "
                f"{decision!r}",
            )
        dec_count = record.get("dec_count")
        if isinstance(dec_count, (int, float)) and dec_count < 0:
            self.report(
                "wp2p.lihd",
                f"client {record.get('client')} negative LIHD decrease "
                f"count {dec_count}",
            )

    _TRACE_CHECKS: Dict[Tuple[str, str], Callable] = {
        ("bittorrent", "announce"): _check_announce,
        ("bittorrent", "piece_complete"): _check_piece_complete,
        ("wp2p", "am_state"): _check_am_state,
        ("wp2p", "ma_fetch_mode"): _check_ma_mode,
        ("wp2p", "lihd_update"): _check_lihd_update,
    }

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, checker: str, message: str) -> None:
        """Record one violation; raise unless in collect mode."""
        violation = Violation(self._clock(), checker, message)
        if len(self.violations) < self.max_violations:
            self.violations.append(violation)
        if self.raise_on_violation:
            raise AuditViolation(violation)

    @property
    def ok(self) -> bool:
        """True while no invariant has failed."""
        return not self.violations

    def summary(self) -> str:
        return (
            f"audit: {self.sweeps} sweeps, {self.events_seen} events, "
            f"{len(self.violations)} violations"
        )
