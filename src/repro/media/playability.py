"""Media playability of a partially downloaded file.

The paper's §3.6 metric: media formats "allow for partial playback of
content provided the partial information is in sequence", so the playable
fraction of a download is the length of the **in-order prefix** of complete
pieces.  Rarest-first fetching leaves this prefix near zero until almost the
whole file is down (Figure 4(b, c)); mobility-aware fetching keeps it high
(Figure 9(a, b)).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..bittorrent.bitfield import Bitfield
from ..bittorrent.metainfo import Torrent


def playable_prefix_pieces(bitfield: Bitfield) -> int:
    """Number of leading consecutive complete pieces."""
    count = 0
    for index in range(bitfield.size):
        if not bitfield.has(index):
            break
        count += 1
    return count


def playable_bytes(torrent: Torrent, bitfield: Bitfield) -> int:
    """Bytes of in-sequence content from the head of the file."""
    prefix = playable_prefix_pieces(bitfield)
    if prefix == torrent.num_pieces:
        return torrent.total_size
    return prefix * torrent.piece_length


def playable_fraction(torrent: Torrent, bitfield: Bitfield) -> float:
    """Playable bytes as a fraction of the file size, in [0, 1]."""
    return playable_bytes(torrent, bitfield) / torrent.total_size


def downloaded_fraction(torrent: Torrent, bitfield: Bitfield) -> float:
    """Complete-piece bytes as a fraction of the file size."""
    total = sum(torrent.piece_size(i) for i in bitfield.indices())
    return total / torrent.total_size


def playability_curve(
    torrent: Torrent, completion_order: Sequence[int]
) -> List[Tuple[float, float]]:
    """``(downloaded %, playable %)`` after each completed piece.

    ``completion_order`` is the order pieces finished (as recorded by
    :class:`~repro.bittorrent.piece_manager.PieceManager`); the result is
    the paper's playability plot for one run.
    """
    bitfield = Bitfield(torrent.num_pieces)
    curve: List[Tuple[float, float]] = [(0.0, 0.0)]
    for index in completion_order:
        bitfield.set(index)
        curve.append(
            (
                100.0 * downloaded_fraction(torrent, bitfield),
                100.0 * playable_fraction(torrent, bitfield),
            )
        )
    return curve


def decodable_prefix_groups(codec, bitfield: Bitfield) -> int:
    """Leading consecutive decodable groups of an erasure-coded download.

    ``codec`` is a non-trivial content codec (duck-typed on
    :class:`repro.coding.GroupCodec`): the unit of in-order playback is
    the *source group*, playable once any ``required`` of its coded
    pieces are held — the coded analogue of
    :func:`playable_prefix_pieces`.
    """
    counts = codec.group_counts(bitfield)
    prefix = 0
    for group, have in enumerate(counts):
        if have < codec.required(group):
            break
        prefix += 1
    return prefix


def coded_playable_bytes(codec, bitfield: Bitfield) -> int:
    """Source bytes of the in-order decodable prefix."""
    prefix = decodable_prefix_groups(codec, bitfield)
    return sum(codec.group_source_bytes(g) for g in range(prefix))


def coded_playable_fraction(codec, bitfield: Bitfield) -> float:
    """Playable source bytes as a fraction of the source size, in [0, 1]."""
    return coded_playable_bytes(codec, bitfield) / codec.source_size


def coded_playability_curve(
    codec, completion_order: Sequence[int]
) -> List[Tuple[float, float]]:
    """``(decoded source %, playable source %)`` after each coded piece.

    The coded counterpart of :func:`playability_curve`: progress on both
    axes is measured in *source* bytes (what a media player could
    consume), not coded wire bytes, so replication and k-of-n runs plot
    on the same scale.
    """
    bitfield = Bitfield(codec.torrent.num_pieces)
    curve: List[Tuple[float, float]] = [(0.0, 0.0)]
    for index in completion_order:
        bitfield.set(index)
        decoded = codec.decoded_bytes(bitfield) / codec.source_size
        playable = coded_playable_fraction(codec, bitfield)
        curve.append((100.0 * decoded, 100.0 * playable))
    return curve


def playable_percentage_at(
    curve: Sequence[Tuple[float, float]], downloaded_percent: float
) -> float:
    """Interpolate a playability curve at a given downloaded percentage."""
    if not curve:
        return 0.0
    last = 0.0
    for down, play in curve:
        if down > downloaded_percent:
            break
        last = play
    return last


def average_curves(
    curves: Iterable[Sequence[Tuple[float, float]]],
    grid: Sequence[float],
) -> List[Tuple[float, float]]:
    """Average several runs' playability curves on a common grid."""
    curves = list(curves)
    if not curves:
        return [(g, 0.0) for g in grid]
    out: List[Tuple[float, float]] = []
    for g in grid:
        values = [playable_percentage_at(c, g) for c in curves]
        out.append((g, sum(values) / len(values)))
    return out
