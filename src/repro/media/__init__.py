"""Media playability model (in-order-prefix playback)."""

from .playability import (
    average_curves,
    coded_playability_curve,
    coded_playable_bytes,
    coded_playable_fraction,
    decodable_prefix_groups,
    downloaded_fraction,
    playability_curve,
    playable_bytes,
    playable_fraction,
    playable_percentage_at,
    playable_prefix_pieces,
)

__all__ = [
    "average_curves",
    "coded_playability_curve",
    "coded_playable_bytes",
    "coded_playable_fraction",
    "decodable_prefix_groups",
    "downloaded_fraction",
    "playability_curve",
    "playable_bytes",
    "playable_fraction",
    "playable_percentage_at",
    "playable_prefix_pieces",
]
