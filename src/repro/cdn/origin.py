"""The always-on origin seeder and its placement/retention policies.

The origin is the CDN's infrastructure fallback: one well-provisioned
host that can seed any catalog asset, governed by a placement policy
deciding *which* assets it actively seeds:

* ``pin_top_k`` — the ``k`` most popular ranks are pinned (seeded from
  t=0, never evicted); other assets are activated on demand and the
  least-recently-requested unpinned one is evicted when the active set
  exceeds ``capacity``.
* ``lru_evict`` — nothing pinned: pure on-demand activation with LRU
  eviction at ``capacity``.
* ``replicate_on_miss`` — activate on first request, never evict
  (unbounded retention).

Activating a non-pinned asset pays ``activation_delay`` seconds (the
origin fetching from its backing store) before the seed joins the
swarm.  Every origin upload is metered, so scenarios can report the
*origin offload fraction* — the share of delivered bytes the peer swarm
absorbed instead of the origin.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Union

from ..bittorrent.client import BitTorrentClient, ClientConfig
from ..net import AddressAllocator, Host, Internet, attach_wired_host
from ..sim import Simulator
from ..tcp.stack import TCPStack
from .catalog import Catalog, _require_int, _require_number  # noqa: F401

POLICIES = ("pin_top_k", "lru_evict", "replicate_on_miss")

OriginSpec = Union[str, Mapping[str, object], None]

#: Origin per-asset listen ports start here (peer clients use the 6881+
#: range on their own hosts).
ORIGIN_BASE_PORT = 7000


def normalize_origin(spec: OriginSpec) -> Dict[str, object]:
    """Canonicalise and validate an origin spec (eager, at parse time).

    Accepted forms: a policy name string, or a mapping such as
    ``{"policy": "pin_top_k", "k": 2, "capacity": 4,
    "activation_delay": 3.0, "up_rate": 400000}``.
    """
    if spec is None:
        spec = {}
    if isinstance(spec, str):
        spec = {"policy": spec}
    if not isinstance(spec, Mapping):
        raise ValueError(f"origin spec must be a policy name or mapping, got {spec!r}")
    known = {"policy", "k", "capacity", "activation_delay", "up_rate"}
    unknown = set(spec) - known
    if unknown:
        raise ValueError(
            f"unknown origin keys {sorted(unknown)}; expected {sorted(known)}"
        )
    policy = spec.get("policy", "pin_top_k")
    if policy not in POLICIES:
        raise ValueError(
            f"unknown origin policy {policy!r}; choose from {', '.join(POLICIES)}"
        )
    out: Dict[str, object] = {"policy": policy}
    out["k"] = _require_int(spec.get("k", 1), "k", minimum=0)
    out["capacity"] = _require_int(spec.get("capacity", 4), "capacity", minimum=1)
    delay = _require_number(spec.get("activation_delay", 3.0), "activation_delay")
    if delay < 0:
        raise ValueError(f"activation_delay must be >= 0, got {delay}")
    out["activation_delay"] = delay
    up_rate = _require_number(spec.get("up_rate", 400_000.0), "up_rate")
    if up_rate <= 0:
        raise ValueError(f"up_rate must be > 0, got {up_rate}")
    out["up_rate"] = up_rate
    if out["policy"] == "pin_top_k" and int(out["k"]) > int(out["capacity"]):
        raise ValueError(
            f"pin_top_k needs k <= capacity (got k={out['k']}, "
            f"capacity={out['capacity']})"
        )
    return out


class Origin:
    """One origin host seeding a policy-chosen subset of the catalog."""

    def __init__(
        self,
        sim: Simulator,
        internet: Internet,
        alloc: AddressAllocator,
        catalog: Catalog,
        torrents: Mapping[int, object],  # rank -> Torrent
        spec: OriginSpec = None,
        name: str = "origin",
    ) -> None:
        self.sim = sim
        self.catalog = catalog
        self.torrents = dict(torrents)
        self.spec = normalize_origin(spec)
        self.policy: str = str(self.spec["policy"])
        self.capacity = int(self.spec["capacity"])  # type: ignore[arg-type]
        self.activation_delay = float(self.spec["activation_delay"])  # type: ignore[arg-type]
        self.host = Host(sim, name)
        TCPStack(sim, self.host)
        attach_wired_host(
            sim, self.host, internet, alloc.allocate(),
            down_rate=10_000_000.0, up_rate=float(self.spec["up_rate"]),  # type: ignore[arg-type]
        )
        #: rank -> seeding client (created once, restarted on re-activation)
        self.clients: Dict[int, BitTorrentClient] = {}
        #: ranks currently seeding (or scheduled to start)
        self.active: Dict[int, float] = {}  # rank -> last-touched time
        self.pinned: frozenset = frozenset()
        if self.policy == "pin_top_k":
            k = min(int(self.spec["k"]), len(catalog))  # type: ignore[arg-type]
            self.pinned = frozenset(range(1, k + 1))
        self.activations = 0
        self.evictions = 0

    def start(self) -> None:
        """Bring up the pinned working set (seeding from t=0)."""
        for rank in sorted(self.pinned):
            self._activate(rank, delay=0.0)

    # ------------------------------------------------------------------
    def on_request(self, rank: int, now: float) -> None:
        """A catalog request arrived: place/refresh this asset.

        Every policy activates on miss (a CDN must eventually serve what
        is asked of it); they differ in what they *retain*.
        """
        self.active[rank] = now  # LRU touch (insert or refresh)
        if rank not in self.clients or not self.clients[rank].started:
            self._activate(rank, delay=self.activation_delay)
        self._enforce_capacity()

    def _activate(self, rank: int, delay: float) -> None:
        client = self.clients.get(rank)
        if client is None:
            client = BitTorrentClient(
                self.sim, self.host, self.torrents[rank],
                complete=True,
                config=ClientConfig(
                    listen_port=ORIGIN_BASE_PORT + rank,
                    unchoke_slots=8,
                ),
                name=f"origin.r{rank}",
            )
            self.clients[rank] = client
        self.active.setdefault(rank, self.sim.now)
        self.activations += 1
        self.sim.metrics.counter("cdn.origin_activations").add()
        if self.sim.trace.enabled:
            self.sim.trace.event(
                "cdn", "origin_activate", rank=rank, delay=delay,
                policy=self.policy,
            )
        if delay > 0:
            self.sim.schedule(delay, client.start)
        else:
            client.start()

    def _enforce_capacity(self) -> None:
        if self.policy == "replicate_on_miss":
            return
        evictable = [r for r in self.active if r not in self.pinned]
        while len(self.active) > self.capacity and evictable:
            victim = min(evictable, key=lambda r: (self.active[r], r))
            evictable.remove(victim)
            self._evict(victim)

    def _evict(self, rank: int) -> None:
        self.active.pop(rank, None)
        client = self.clients.get(rank)
        if client is not None and client.started:
            client.stop()
        self.evictions += 1
        self.sim.metrics.counter("cdn.origin_evictions").add()
        if self.sim.trace.enabled:
            self.sim.trace.event(
                "cdn", "origin_evict", rank=rank, policy=self.policy
            )

    # ------------------------------------------------------------------
    def uploaded_bytes(self) -> float:
        """Total bytes the origin served, across all assets ever active."""
        return float(sum(c.uploaded.total for c in self.clients.values()))

    def active_ranks(self) -> List[int]:
        return sorted(self.active)
