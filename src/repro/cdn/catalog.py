"""Hash-addressed asset catalogs.

A :class:`Catalog` is the content side of the CDN tier: an ordered set
of :class:`Asset` descriptions (popularity rank, byte size, piece
geometry), each identified by a content address derived from its
description — the ``p2p-cdn/host`` shape where every file is named by
its hash, not by a mutable path.  Each asset maps to one BitTorrent
swarm (:meth:`Catalog.torrent`), so a catalog of N assets is N swarms
sharing one tracker, one origin, and each requesting peer's single
uplink.

Catalog *specs* are plain data (``{"assets": 16, "size_kib": 256}``, or
the ``"assets:16,size_kib:256"`` CLI string) and are validated eagerly
by :func:`normalize_catalog` so a malformed spec fails at parse time,
never inside a worker process mid-campaign.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..bittorrent.metainfo import BLOCK_LENGTH, Torrent

#: Catalogs above this are rejected on the packet backend by scenarios
#: (one swarm per asset would melt the event kernel); the fluid
#: surrogate has no such limit.
PACKET_CATALOG_LIMIT = 64

_DEFAULT_ASSETS = 4
_DEFAULT_SIZE_KIB = 256
_DEFAULT_PIECE_KIB = 16

CatalogSpec = Union[int, str, Mapping[str, object], None]


@dataclass(frozen=True)
class Asset:
    """One catalog entry: a hash-addressed file served as one swarm."""

    rank: int  # 1-based popularity rank (1 = most popular)
    name: str
    size: int  # bytes
    piece_length: int

    @property
    def asset_id(self) -> str:
        """Content address: a digest of the asset description.

        Stable across processes and runs (unlike
        :func:`~repro.bittorrent.metainfo.make_torrent`'s process-local
        counter), so serial and parallel workers name identical swarms.
        """
        body = f"{self.name}|{self.size}|{self.piece_length}"
        return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]

    @property
    def num_pieces(self) -> int:
        return (self.size + self.piece_length - 1) // self.piece_length


def normalize_catalog(spec: CatalogSpec) -> Dict[str, object]:
    """Canonicalise and validate a catalog spec (eager, at parse time).

    Accepted forms::

        8                                   # asset count, defaults otherwise
        "assets:8"                          # CLI string
        "assets:8,size_kib:512,piece_kib:32"
        {"assets": 8, "size_kib": 512}      # mapping (JSON)
        {"assets": 3, "sizes_kib": [512, 256, 64]}  # per-asset sizes

    Raises :class:`ValueError` on anything malformed.
    """
    if spec is None:
        spec = {}
    if isinstance(spec, bool):
        raise ValueError("catalog spec must be a count, string, or mapping")
    if isinstance(spec, int):
        spec = {"assets": spec}
    elif isinstance(spec, str):
        spec = _parse_catalog_string(spec)
    elif not isinstance(spec, Mapping):
        raise ValueError(
            f"catalog spec must be a count, string, or mapping, got {spec!r}"
        )
    known = {"assets", "size_kib", "piece_kib", "sizes_kib"}
    unknown = set(spec) - known
    if unknown:
        raise ValueError(
            f"unknown catalog keys {sorted(unknown)}; expected {sorted(known)}"
        )
    assets = _require_int(spec.get("assets", _DEFAULT_ASSETS), "assets", minimum=1)
    size_kib = _require_int(
        spec.get("size_kib", _DEFAULT_SIZE_KIB), "size_kib", minimum=1
    )
    piece_kib = _require_int(
        spec.get("piece_kib", _DEFAULT_PIECE_KIB), "piece_kib", minimum=1
    )
    piece_length = piece_kib * 1024
    if piece_length > BLOCK_LENGTH and piece_length % BLOCK_LENGTH != 0:
        raise ValueError(
            f"piece_kib={piece_kib} gives a piece length that is not a "
            f"multiple of the {BLOCK_LENGTH}-byte transfer block"
        )
    out: Dict[str, object] = {
        "assets": assets, "size_kib": size_kib, "piece_kib": piece_kib
    }
    sizes = spec.get("sizes_kib")
    if sizes is not None:
        if not isinstance(sizes, Sequence) or isinstance(sizes, (str, bytes)):
            raise ValueError("sizes_kib must be a list of per-asset KiB sizes")
        if len(sizes) != assets:
            raise ValueError(
                f"sizes_kib has {len(sizes)} entries for {assets} assets"
            )
        out["sizes_kib"] = [
            _require_int(s, f"sizes_kib[{i}]", minimum=1)
            for i, s in enumerate(sizes)
        ]
    return out


def _parse_catalog_string(text: str) -> Dict[str, object]:
    """``"assets:8,size_kib:512"`` (a bare integer also works)."""
    text = text.strip()
    if not text:
        return {}
    try:
        return {"assets": int(text)}
    except ValueError:
        pass
    out: Dict[str, object] = {}
    for part in text.split(","):
        key, sep, raw = part.strip().partition(":")
        if not sep or not key:
            raise ValueError(
                f"catalog string expects key:value pairs, got {part!r}"
            )
        try:
            out[key.strip()] = int(raw)
        except ValueError:
            raise ValueError(
                f"catalog value for {key.strip()!r} must be an integer, "
                f"got {raw!r}"
            ) from None
    return out


def _require_number(value: object, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be a number, got {value!r}")
    return float(value)


def _require_int(value: object, name: str, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if isinstance(value, float):
        if not value.is_integer():
            raise ValueError(f"{name} must be an integer, got {value!r}")
        value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


class Catalog:
    """An immutable, rank-ordered set of hash-addressed assets."""

    def __init__(self, assets: Sequence[Asset]) -> None:
        if not assets:
            raise ValueError("catalog needs at least one asset")
        ranks = [a.rank for a in assets]
        if ranks != list(range(1, len(assets) + 1)):
            raise ValueError("assets must be rank-ordered 1..N")
        self._assets: Tuple[Asset, ...] = tuple(assets)
        self._by_rank: Dict[int, Asset] = {a.rank: a for a in self._assets}

    @classmethod
    def from_spec(cls, spec: CatalogSpec) -> "Catalog":
        """Build the catalog a canonical spec describes."""
        norm = normalize_catalog(spec)
        assets = int(norm["assets"])  # type: ignore[arg-type]
        piece_length = int(norm["piece_kib"]) * 1024  # type: ignore[arg-type]
        sizes = norm.get("sizes_kib")
        out: List[Asset] = []
        for rank in range(1, assets + 1):
            kib = (
                int(sizes[rank - 1]) if sizes is not None  # type: ignore[index]
                else int(norm["size_kib"])  # type: ignore[arg-type]
            )
            out.append(
                Asset(
                    rank=rank,
                    name=f"asset-{rank:05d}",
                    size=kib * 1024,
                    piece_length=piece_length,
                )
            )
        return cls(out)

    def __len__(self) -> int:
        return len(self._assets)

    def __iter__(self) -> Iterator[Asset]:
        return iter(self._assets)

    def asset(self, rank: int) -> Asset:
        try:
            return self._by_rank[rank]
        except KeyError:
            raise KeyError(
                f"no asset with rank {rank} (catalog has 1..{len(self)})"
            ) from None

    @property
    def total_bytes(self) -> int:
        return sum(a.size for a in self._assets)

    def torrent(
        self, asset_or_rank: Union[Asset, int], tracker_ip: str, tracker_port: int
    ) -> Torrent:
        """The torrent serving one asset (info-hash = content address)."""
        asset = (
            asset_or_rank
            if isinstance(asset_or_rank, Asset)
            else self.asset(asset_or_rank)
        )
        return Torrent(
            info_hash=f"cdn-{asset.asset_id}",
            name=asset.name,
            total_size=asset.size,
            piece_length=asset.piece_length,
            tracker_ip=tracker_ip,
            tracker_port=tracker_port,
        )
