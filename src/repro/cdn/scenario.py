"""The multi-swarm CDN scenario: catalog + demand + origin + peers.

One :class:`CdnScenario` wires the whole tier together: a tracker
hosting one swarm per catalog asset, an always-on
:class:`~repro.cdn.origin.Origin` with a placement policy, and a
population of :class:`CdnPeer` hosts that join swarms *on demand* as the
request trace assigns them assets.  The defining constraint — the thing
a single-torrent :class:`~repro.bittorrent.swarm.SwarmScenario` cannot
express — is that each peer's per-asset clients share **one uplink**:
one :class:`~repro.bittorrent.rate.TokenBucket` across every swarm the
peer serves, one access link (wired) or one wireless channel (mobile)
under all of its connections.

Ambient workload resolution follows the chaos convention: an installed
:func:`repro.cdn.ambient_workload` (the Runner's ``workload=`` axis, the
CLI's ``--catalog``/``--demand``) takes precedence over constructor
arguments, so one flag retargets every scenario in a campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bittorrent.client import BitTorrentClient, ClientConfig
from ..bittorrent.metainfo import Torrent
from ..bittorrent.rate import TokenBucket
from ..bittorrent.tracker import Tracker
from ..net import (
    AddressAllocator,
    Host,
    Internet,
    MobilityController,
    WirelessChannel,
    attach_wired_host,
    attach_wireless_host,
)
from ..sim import PeriodicTask, Simulator
from ..tcp.stack import TCPStack
from .catalog import PACKET_CATALOG_LIMIT, Catalog
from .demand import Request, ZipfDemand
from .metrics import CdnMetrics
from .origin import Origin

#: Per-asset peer listen ports start here (rank r listens on BASE + r).
PEER_BASE_PORT = 6881


@dataclass
class PendingRequest:
    """One in-flight catalog request awaiting its client's completion."""

    peer: "CdnPeer"
    rank: int
    time: float
    client: BitTorrentClient
    latency: Optional[float] = None  # set when served


@dataclass
class CdnPeer:
    """One CDN peer: a host, a shared uplink, and per-asset clients."""

    name: str
    index: int
    host: Host
    bucket: TokenBucket
    wireless: bool = False
    channel: Optional[WirelessChannel] = None
    mobility: Optional[MobilityController] = None
    #: rank -> the client fetching/seeding that asset on this host
    clients: Dict[int, BitTorrentClient] = field(default_factory=dict)

    def uploaded_bytes(self) -> float:
        return float(sum(c.uploaded.total for c in self.clients.values()))

    def downloaded_bytes(self) -> float:
        return float(sum(c.downloaded.total for c in self.clients.values()))


class CdnScenario:
    """A P2P CDN testbed: N asset swarms, one origin, shared-uplink peers."""

    def __init__(
        self,
        seed: int = 0,
        catalog: object = None,
        demand: object = None,
        origin: object = None,
        peers: int = 6,
        mobile_fraction: float = 0.0,
        wp2p: bool = False,
        horizon: float = 300.0,
        peer_up_rate: float = 48_000.0,
        peer_down_rate: float = 500_000.0,
        wireless_rate: float = 100_000.0,
        handoff_interval: Optional[float] = 60.0,
        handoff_downtime: float = 1.0,
        core_delay: float = 0.02,
        tracker_interval: float = 60.0,
        client_config: Optional[ClientConfig] = None,
    ) -> None:
        # Ambient workload (Runner --catalog/--demand) beats constructor
        # arguments — the chaos convention, so one flag retargets every
        # scenario in a campaign.
        from . import ambient_workload

        ambient = ambient_workload()
        if ambient is not None:
            catalog = ambient.get("catalog", catalog)
            demand = ambient.get("demand", demand)
            origin = ambient.get("origin", origin)
        if peers < 1:
            raise ValueError("peers must be >= 1")
        if not 0.0 <= mobile_fraction <= 1.0:
            raise ValueError("mobile_fraction must be in [0, 1]")
        if horizon <= 0:
            raise ValueError("horizon must be > 0")
        self.catalog = (
            catalog if isinstance(catalog, Catalog) else Catalog.from_spec(catalog)
        )
        if len(self.catalog) > PACKET_CATALOG_LIMIT:
            raise ValueError(
                f"catalog of {len(self.catalog)} assets exceeds the packet "
                f"backend's limit of {PACKET_CATALOG_LIMIT} swarms; run the "
                f"fluid backend (repro.cdn.surrogate) for large catalogs"
            )
        self.horizon = float(horizon)
        self.wp2p = bool(wp2p)
        self._base_config = client_config or ClientConfig()

        self.sim = Simulator(seed=seed)
        self.internet = Internet(self.sim, core_delay=core_delay)
        self.alloc = AddressAllocator()
        self.metrics = CdnMetrics(self.sim)

        # One tracker hosts every asset's swarm (the tracker keys its
        # records by info-hash, so multi-swarm costs nothing extra).
        self.tracker_host = Host(self.sim, "tracker")
        TCPStack(self.sim, self.tracker_host)
        attach_wired_host(
            self.sim, self.tracker_host, self.internet, self.alloc.allocate(),
            down_rate=10_000_000, up_rate=10_000_000,
        )
        self.tracker = Tracker(
            self.sim, self.tracker_host, interval=tracker_interval
        )
        self.torrents: Dict[int, Torrent] = {
            asset.rank: self.catalog.torrent(
                asset, self.tracker_host.ip or "", self.tracker.port
            )
            for asset in self.catalog
        }

        self.origin = Origin(
            self.sim, self.internet, self.alloc, self.catalog,
            self.torrents, spec=origin,
        )

        # Peer population: the trailing `mobile_count` peers are wireless
        # and mobile; the rest sit on asymmetric wired access links.
        mobile_count = round(peers * mobile_fraction)
        self.peers: List[CdnPeer] = []
        for i in range(peers):
            mobile = i >= peers - mobile_count
            name = f"peer{i}" if not mobile else f"mob{i}"
            host = Host(self.sim, name)
            TCPStack(self.sim, host)
            channel = None
            if mobile:
                channel = attach_wireless_host(
                    self.sim, host, self.internet, self.alloc.allocate(),
                    rate=wireless_rate,
                )
            else:
                attach_wired_host(
                    self.sim, host, self.internet, self.alloc.allocate(),
                    down_rate=peer_down_rate, up_rate=peer_up_rate,
                )
            # THE shared uplink: one token bucket serves every swarm this
            # peer participates in, so seeding a popular asset steals
            # upload capacity from the niche one — the coupling that makes
            # a catalog different from N independent torrents.
            bucket = TokenBucket(self.sim, peer_up_rate)
            peer = CdnPeer(
                name=name, index=i, host=host, bucket=bucket,
                wireless=mobile, channel=channel,
            )
            if mobile and handoff_interval is not None:
                peer.mobility = MobilityController(
                    self.sim, host, self.internet, self.alloc,
                    interval=handoff_interval, downtime=handoff_downtime,
                )
                peer.mobility.start()
            self.peers.append(peer)

        # The demand side: a seeded trace scheduled up front, so the whole
        # run is a pure function of (spec, seed).
        self.demand = ZipfDemand(
            demand, assets=len(self.catalog), peers=peers, seed=seed
        )
        self.trace: List[Request] = self.demand.trace(self.horizon)
        self.pending: List[PendingRequest] = []
        self._requests_seen = 0

        self.origin.start()
        for request in self.trace:
            self.sim.schedule(request.time, self._handle_request, request)
        self._sweep = PeriodicTask(self.sim, 0.5, self._sweep_completions)
        self._sweep.start(first_delay=0.5)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _handle_request(self, request: Request) -> None:
        peer = self.peers[request.peer]
        rank = request.rank
        now = self.sim.now
        self._requests_seen += 1
        self.origin.on_request(rank, now)
        existing = peer.clients.get(rank)
        if existing is not None:
            # Local hit: the asset is already on (or streaming to) this
            # host.  An in-flight fetch still accrues latency from *this*
            # request's arrival; a finished one serves instantly.
            self.metrics.on_request(peer.name, rank, local=True)
            if existing.complete:
                self.pending.append(
                    PendingRequest(peer, rank, now, existing, latency=0.0)
                )
                self.metrics.on_completion(peer.name, rank, 0.0)
            else:
                self.pending.append(PendingRequest(peer, rank, now, existing))
            return
        self.metrics.on_request(peer.name, rank, local=False)
        client = self._make_client(peer, rank)
        peer.clients[rank] = client
        self.pending.append(PendingRequest(peer, rank, now, client))
        self.metrics.on_join(peer.name, rank)
        client.start()

    def _make_client(self, peer: CdnPeer, rank: int) -> BitTorrentClient:
        """One per-asset client sharing the peer's uplink bucket."""
        from dataclasses import replace

        if self.wp2p and peer.wireless:
            from ..wp2p.client import WP2PClient, WP2PConfig

            # AM is per-host netfilter state; with one client per swarm on
            # the same host, stacked AM hooks would manipulate each
            # other's ACKs.  The multi-swarm wP2P story is IA + MA.
            config = WP2PConfig(
                am_enabled=False,
                listen_port=PEER_BASE_PORT + rank,
            )
            return WP2PClient(
                self.sim, peer.host, self.torrents[rank],
                config=config, name=f"{peer.name}.r{rank}",
                upload_bucket=peer.bucket,
            )
        config = replace(self._base_config, listen_port=PEER_BASE_PORT + rank)
        return BitTorrentClient(
            self.sim, peer.host, self.torrents[rank],
            config=config, name=f"{peer.name}.r{rank}",
            upload_bucket=peer.bucket,
        )

    def _sweep_completions(self) -> None:
        for entry in self.pending:
            if entry.latency is None and entry.client.complete:
                completed_at = entry.client.completion_time
                if completed_at is None:
                    completed_at = self.sim.now
                entry.latency = max(0.0, completed_at - entry.time)
                self.metrics.on_completion(
                    entry.peer.name, entry.rank, entry.latency
                )

    # ------------------------------------------------------------------
    # Execution / results
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=self.horizon if until is None else until)

    def results(self) -> Dict[str, object]:
        """Aggregate CDN outcomes (JSON-friendly, deterministic order)."""
        self._sweep_completions()  # pick up completions since the last tick
        total = len(self.pending)
        served = sum(1 for e in self.pending if e.latency is not None)
        latencies = [
            e.latency if e.latency is not None else self.horizon - e.time
            for e in self.pending
        ]
        per_asset: Dict[str, Dict[str, object]] = {}
        for asset in self.catalog:
            entries = [e for e in self.pending if e.rank == asset.rank]
            if not entries:
                continue
            done = [e for e in entries if e.latency is not None]
            per_asset[str(asset.rank)] = {
                "requests": len(entries),
                "completed": len(done),
                "mean_latency": (
                    sum(e.latency for e in done) / len(done) if done else None
                ),
            }
        origin_bytes = self.origin.uploaded_bytes()
        peer_bytes = sum(p.uploaded_bytes() for p in self.peers)
        delivered = origin_bytes + peer_bytes
        return {
            "requests": total,
            "served": served,
            "catalog_completion": served / total if total else 1.0,
            "mean_latency": sum(latencies) / total if total else 0.0,
            "origin_bytes": origin_bytes,
            "peer_bytes": peer_bytes,
            "offload": peer_bytes / delivered if delivered > 0 else 1.0,
            "origin_activations": self.origin.activations,
            "origin_evictions": self.origin.evictions,
            "per_asset": per_asset,
            "steps": self.sim.events_processed,
        }
