"""``cdn.*`` metrics through :mod:`repro.obs`.

One thin layer owning the CDN tier's instruments so every scenario and
the fuzzer emit the same names:

* ``cdn.requests`` / ``cdn.local_hits`` / ``cdn.completions`` — counters
* ``cdn.hit_latency`` — histogram of request→completion seconds
* ``cdn.catalog_completion`` — gauge, fraction of requests served
* ``cdn.origin_activations`` / ``cdn.origin_evictions`` — counters
  (emitted by :class:`~repro.cdn.origin.Origin`)

Structured trace events ride the ``"cdn"`` layer (``request``,
``join``, ``local_hit``, ``complete``, ``origin_activate``,
``origin_evict``).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim import Simulator


class CdnMetrics:
    """Request-path instrumentation for one CDN scenario."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.requests = sim.metrics.counter("cdn.requests")
        self.local_hits = sim.metrics.counter("cdn.local_hits")
        self.completions = sim.metrics.counter("cdn.completions")
        self.hit_latency = sim.metrics.histogram("cdn.hit_latency")
        self.catalog_completion = sim.metrics.gauge("cdn.catalog_completion")
        self._seen = 0
        self._served = 0

    def on_request(self, peer: str, rank: int, local: bool) -> None:
        self.requests.add()
        self._seen += 1
        if local:
            self.local_hits.add()
        if self.sim.trace.enabled:
            self.sim.trace.event(
                "cdn", "local_hit" if local else "request",
                peer=peer, rank=rank,
            )

    def on_join(self, peer: str, rank: int) -> None:
        if self.sim.trace.enabled:
            self.sim.trace.event("cdn", "join", peer=peer, rank=rank)

    def on_completion(self, peer: str, rank: int, latency: float) -> None:
        self.completions.add()
        self._served += 1
        self.hit_latency.observe(latency)
        self.catalog_completion.set(self._served / max(self._seen, 1))
        if self.sim.trace.enabled:
            self.sim.trace.event(
                "cdn", "complete", peer=peer, rank=rank, latency=latency
            )

    def snapshot(self) -> Dict[str, float]:
        return {
            "requests": float(self._seen),
            "served": float(self._served),
        }
