"""Fluid-backend CDN surrogate: popularity bands over asset classes.

The packet-level :class:`~repro.cdn.scenario.CdnScenario` simulates one
swarm per asset, which caps catalogs at tens of assets.  This module is
the CDN tier's fluid backend: it partitions the catalog's Zipf
popularity curve into **geometric rank bands** (1, 2–3, 4–7, …), treats
each band as one :class:`~repro.scale.assets.AssetClassParams`, and
solves the per-class supply/demand fixed point — so a 10^4-asset
catalog costs O(log assets) band solves instead of 10^4 swarm
integrations.

Mobility enters exactly as in :mod:`repro.scale`: the mobile fraction's
duty cycle comes from :meth:`repro.scale.model.PeerClass.availability`
(default clients pay ``restart_delay`` per handoff, wP2P pays
``reconnect_cost``), shrinking the peer supply and shifting delivered
bytes onto the origin — the offload-vs-mobility ordering the CI gate
asserts on both backends.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..scale.assets import AssetClassParams, asset_class_outcome
from ..scale.model import PeerClass
from .catalog import normalize_catalog
from .demand import mean_cycle_factor, normalize_demand, zipf_weights
from .origin import normalize_origin

#: Geometric banding keeps the head of the Zipf curve exact (the top
#: asset is its own band) while the long tail aggregates coarsely.
DEFAULT_MAX_BANDS = 16


def rank_bands(assets: int, max_bands: int = DEFAULT_MAX_BANDS) -> List[Tuple[int, int]]:
    """Inclusive 1-based ``(first, last)`` rank ranges, geometric widths."""
    if assets < 1:
        raise ValueError("assets must be >= 1")
    if max_bands < 1:
        raise ValueError("max_bands must be >= 1")
    bands: List[Tuple[int, int]] = []
    start, width = 1, 1
    while start <= assets:
        if len(bands) == max_bands - 1:
            bands.append((start, assets))
            break
        end = min(assets, start + width - 1)
        bands.append((start, end))
        start = end + 1
        width *= 2
    return bands


def cdn_fluid_cell(
    catalog: object = None,
    demand: object = None,
    origin: object = None,
    peers: int = 6,
    mobile_fraction: float = 0.0,
    wp2p: bool = False,
    horizon: float = 300.0,
    peer_up_rate: float = 48_000.0,
    peer_down_rate: float = 500_000.0,
    wireless_rate: float = 100_000.0,
    handoff_interval: Optional[float] = 60.0,
    handoff_downtime: float = 1.0,
    max_bands: int = DEFAULT_MAX_BANDS,
) -> Dict[str, object]:
    """One fluid CDN cell: the packet cell's axes through band solves.

    Returns the same result keys as
    :meth:`repro.cdn.scenario.CdnScenario.results`, so scenarios can
    assemble either backend's values identically.
    """
    from . import ambient_workload

    ambient = ambient_workload()
    if ambient is not None:
        catalog = ambient.get("catalog", catalog)
        demand = ambient.get("demand", demand)
        origin = ambient.get("origin", origin)
    cat = normalize_catalog(catalog)
    dem = normalize_demand(demand)
    org = normalize_origin(origin)
    if peers < 1:
        raise ValueError("peers must be >= 1")
    if not 0.0 <= mobile_fraction <= 1.0:
        raise ValueError("mobile_fraction must be in [0, 1]")
    if horizon <= 0:
        raise ValueError("horizon must be > 0")

    assets = int(cat["assets"])  # type: ignore[arg-type]
    sizes = cat.get("sizes_kib")
    default_size = int(cat["size_kib"]) * 1024  # type: ignore[arg-type]

    def asset_size(rank: int) -> float:
        if sizes is not None:
            return float(sizes[rank - 1]) * 1024.0  # type: ignore[index]
        return float(default_size)

    # Demand decomposition: Zipf weights, cycle-averaged rate, and the
    # flash crowd folded onto its target rank's band.
    weights = zipf_weights(assets, float(dem["alpha"]))
    base_rate = float(dem["rate"]) * mean_cycle_factor(dem.get("daily_cycle"))
    flash = dem.get("flash_crowd")
    flash_rank = min(int(flash["rank"]), assets) if flash is not None else None  # type: ignore[index]
    flash_rate = (
        float(flash["size"]) / horizon if flash is not None else 0.0  # type: ignore[index]
    )

    # The peer population's duty cycle: wired peers are always on, the
    # mobile fraction cycles through handoffs with a per-client recovery
    # cost — the same PeerClass arithmetic the single-swarm fluid engine
    # uses, so the two tiers share one mobility model.
    mobile_availability = 1.0
    if mobile_fraction > 0 and handoff_interval is not None:
        mobile_availability = PeerClass(
            "mobile", 1.0, peer_up_rate, wireless_rate,
            mobile=True, wp2p=wp2p, wireless_shared=True,
            handoff_interval=handoff_interval,
            handoff_downtime=handoff_downtime,
        ).availability()
    availability = (
        (1.0 - mobile_fraction) + mobile_fraction * mobile_availability
    )
    download = (
        (1.0 - mobile_fraction) * peer_down_rate
        + mobile_fraction * wireless_rate
    )

    # Shared-uplink dilution: a peer serving several swarms splits one
    # bucket across them.  Expected concurrent fetches per peer sets the
    # slice each asset can count on.
    mean_size = sum(asset_size(r) for r in range(1, assets + 1)) / assets
    total_rate = base_rate + flash_rate
    rough_latency = 3.0 + mean_size / max(download * 0.60, 1e-9)
    seed_dwell = horizon / 2.0
    swarms_per_peer = total_rate * (rough_latency + seed_dwell) / peers
    uplink_share = 1.0 / max(1.0, swarms_per_peer)

    # Origin slice: its uplink splits over the expected active set (the
    # placement policy bounds it for the capacity-managed policies).
    pinned_k = int(org["k"]) if org["policy"] == "pin_top_k" else 0  # type: ignore[arg-type]
    pinned_k = min(pinned_k, assets)
    expected_active = float(pinned_k)
    for rank in range(pinned_k + 1, assets + 1):
        rank_rate = base_rate * weights[rank - 1] + (
            flash_rate if rank == flash_rank else 0.0
        )
        expected_active += min(1.0, rank_rate * horizon)
    if org["policy"] in ("pin_top_k", "lru_evict"):
        expected_active = min(expected_active, float(org["capacity"]))  # type: ignore[arg-type]
    origin_slice = float(org["up_rate"]) / max(expected_active, 1.0)  # type: ignore[arg-type]

    bands = rank_bands(assets, max_bands=max_bands)
    per_band: Dict[str, Dict[str, object]] = {}
    total_requests = 0.0
    served_requests = 0.0
    latency_mass = 0.0
    total_bytes = 0.0
    origin_bytes = 0.0
    for first, last in bands:
        n_assets = last - first + 1
        band_rate = base_rate * sum(weights[first - 1:last])
        if flash_rank is not None and first <= flash_rank <= last:
            band_rate += flash_rate
        per_asset_rate = band_rate / n_assets
        size = sum(asset_size(r) for r in range(first, last + 1)) / n_assets
        outcome = asset_class_outcome(
            AssetClassParams(
                size=size,
                request_rate=per_asset_rate,
                download_rate=download,
                upload_rate=peer_up_rate,
                peer_availability=availability,
                uplink_share=uplink_share,
                seed_dwell=seed_dwell,
                origin_rate=origin_slice,
                pinned=last <= pinned_k,
                activation_delay=float(org["activation_delay"]),  # type: ignore[arg-type]
            ),
            horizon,
        )
        band_requests = outcome.requests * n_assets
        total_requests += band_requests
        served_requests += outcome.served_fraction * band_requests
        latency_mass += outcome.latency * band_requests
        total_bytes += outcome.total_bytes * n_assets
        origin_bytes += outcome.origin_bytes * n_assets
        per_band[f"{first}-{last}"] = {
            "requests": band_requests,
            "latency": outcome.latency,
            "offload": outcome.offload,
            "concurrency": outcome.concurrency * n_assets,
        }
    peer_bytes = max(0.0, total_bytes - origin_bytes)
    return {
        "requests": total_requests,
        "served": served_requests,
        "catalog_completion": (
            served_requests / total_requests if total_requests > 0 else 1.0
        ),
        "mean_latency": (
            latency_mass / total_requests if total_requests > 0 else 0.0
        ),
        "origin_bytes": origin_bytes,
        "peer_bytes": peer_bytes,
        "offload": (
            peer_bytes / total_bytes if total_bytes > 0 else 1.0
        ),
        "origin_activations": expected_active,
        "origin_evictions": 0.0,
        "per_asset": per_band,
        "steps": len(bands),
    }
