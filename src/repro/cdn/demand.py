"""Seeded request-arrival processes: Zipf demand, flash crowds, cycles.

The demand side of the CDN tier.  A *demand spec* is plain data — a base
:class:`ZipfDemand` arrival process plus two composable modifiers that
are first-class scenario axes, not separate code paths:

* ``flash_crowd`` — a burst of requests for one asset at one moment (the
  release-day spike);
* ``daily_cycle`` — sinusoidal rate modulation (the diurnal load curve).

:func:`normalize_demand` validates eagerly so malformed Zipf or
flash-crowd parameters fail at parse time (the CLI turns the
:class:`ValueError` into a clean ``SystemExit``).  The *trace* a spec
produces — :func:`request_trace` — is a pure function of
``(spec, assets, peers, horizon, seed)``: the same seed yields the
byte-identical request sequence in every process, which is what keeps
``--jobs N`` bit-identical to serial and cached cells exact replays.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Union

from .catalog import _require_number

DemandSpec = Union[str, Mapping[str, object], None]

_DEFAULT_ALPHA = 1.0
_DEFAULT_RATE = 0.05  # requests/second across the whole peer population


@dataclass(frozen=True)
class Request:
    """One catalog request: at ``time``, peer ``peer`` wants rank ``rank``."""

    time: float
    peer: int
    rank: int


def zipf_weights(assets: int, alpha: float) -> List[float]:
    """Normalised Zipf(alpha) popularity over ranks ``1..assets``."""
    if assets < 1:
        raise ValueError("assets must be >= 1")
    if alpha <= 0:
        raise ValueError("alpha must be > 0")
    raw = [rank ** -alpha for rank in range(1, assets + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def normalize_demand(spec: DemandSpec) -> Dict[str, object]:
    """Canonicalise and validate a demand spec (eager, at parse time).

    Accepted forms::

        "zipf:1.2"                  # alpha
        "zipf:1.2@0.1"              # alpha @ requests-per-second
        {"kind": "zipf", "alpha": 1.2, "rate": 0.1}
        {"kind": "zipf", "alpha": 1.0, "rate": 0.1,
         "flash_crowd": {"at": 60.0, "rank": 1, "size": 8, "width": 5.0},
         "daily_cycle": {"period": 600.0, "depth": 0.5, "phase": 0.0}}

    Raises :class:`ValueError` on anything malformed.
    """
    if spec is None:
        spec = {}
    if isinstance(spec, str):
        spec = _parse_demand_string(spec)
    if not isinstance(spec, Mapping):
        raise ValueError(f"demand spec must be a string or mapping, got {spec!r}")
    known = {"kind", "alpha", "rate", "flash_crowd", "daily_cycle"}
    unknown = set(spec) - known
    if unknown:
        raise ValueError(
            f"unknown demand keys {sorted(unknown)}; expected {sorted(known)}"
        )
    kind = spec.get("kind", "zipf")
    if kind != "zipf":
        raise ValueError(f"unknown demand kind {kind!r}; only 'zipf' exists")
    alpha = _require_number(spec.get("alpha", _DEFAULT_ALPHA), "alpha")
    if alpha <= 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    rate = _require_number(spec.get("rate", _DEFAULT_RATE), "rate")
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    out: Dict[str, object] = {"kind": "zipf", "alpha": alpha, "rate": rate}
    flash = spec.get("flash_crowd")
    if flash is not None:
        out["flash_crowd"] = _normalize_flash(flash)
    cycle = spec.get("daily_cycle")
    if cycle is not None:
        out["daily_cycle"] = _normalize_cycle(cycle)
    return out


def _normalize_flash(flash: object) -> Dict[str, object]:
    if not isinstance(flash, Mapping):
        raise ValueError(f"flash_crowd must be a mapping, got {flash!r}")
    known = {"at", "rank", "size", "width"}
    unknown = set(flash) - known
    if unknown:
        raise ValueError(
            f"unknown flash_crowd keys {sorted(unknown)}; expected {sorted(known)}"
        )
    at = _require_number(flash.get("at", 0.0), "flash_crowd.at")
    if at < 0:
        raise ValueError(f"flash_crowd.at must be >= 0, got {at}")
    rank = flash.get("rank", 1)
    if isinstance(rank, bool) or not isinstance(rank, int) or rank < 1:
        raise ValueError(f"flash_crowd.rank must be an integer >= 1, got {rank!r}")
    size = flash.get("size", 1)
    if isinstance(size, bool) or not isinstance(size, int) or size < 1:
        raise ValueError(f"flash_crowd.size must be an integer >= 1, got {size!r}")
    width = _require_number(flash.get("width", 1.0), "flash_crowd.width")
    if width <= 0:
        raise ValueError(f"flash_crowd.width must be > 0, got {width}")
    return {"at": at, "rank": rank, "size": size, "width": width}


def _normalize_cycle(cycle: object) -> Dict[str, object]:
    if not isinstance(cycle, Mapping):
        raise ValueError(f"daily_cycle must be a mapping, got {cycle!r}")
    known = {"period", "depth", "phase"}
    unknown = set(cycle) - known
    if unknown:
        raise ValueError(
            f"unknown daily_cycle keys {sorted(unknown)}; expected {sorted(known)}"
        )
    period = _require_number(cycle.get("period", 600.0), "daily_cycle.period")
    if period <= 0:
        raise ValueError(f"daily_cycle.period must be > 0, got {period}")
    depth = _require_number(cycle.get("depth", 0.5), "daily_cycle.depth")
    if not 0.0 <= depth < 1.0:
        raise ValueError(f"daily_cycle.depth must be in [0, 1), got {depth}")
    phase = _require_number(cycle.get("phase", 0.0), "daily_cycle.phase")
    if phase < 0:
        raise ValueError(f"daily_cycle.phase must be >= 0, got {phase}")
    return {"period": period, "depth": depth, "phase": phase}


def _parse_demand_string(text: str) -> Dict[str, object]:
    """``"zipf:ALPHA"`` or ``"zipf:ALPHA@RATE"``."""
    text = text.strip()
    if not text:
        return {}
    kind, sep, rest = text.partition(":")
    if kind != "zipf":
        raise ValueError(
            f"unknown demand kind {kind!r}; expected 'zipf:ALPHA[@RATE]'"
        )
    out: Dict[str, object] = {"kind": "zipf"}
    if sep and rest:
        alpha_text, at, rate_text = rest.partition("@")
        try:
            out["alpha"] = float(alpha_text)
        except ValueError:
            raise ValueError(
                f"demand alpha must be a number, got {alpha_text!r}"
            ) from None
        if at:
            try:
                out["rate"] = float(rate_text)
            except ValueError:
                raise ValueError(
                    f"demand rate must be a number, got {rate_text!r}"
                ) from None
    return out


def cycle_factor(t: float, cycle: Optional[Mapping[str, object]]) -> float:
    """Relative arrival rate at time ``t`` under a daily cycle (1.0 peak).

    ``1 - depth`` at the trough, sinusoidal, peak at ``t = phase``.
    """
    if cycle is None:
        return 1.0
    period = float(cycle["period"])
    depth = float(cycle["depth"])
    phase = float(cycle.get("phase", 0.0))
    wave = 0.5 + 0.5 * math.cos(2.0 * math.pi * (t - phase) / period)
    return 1.0 - depth * (1.0 - wave)


def mean_cycle_factor(cycle: Optional[Mapping[str, object]]) -> float:
    """Time-averaged :func:`cycle_factor` (closed form: ``1 - depth/2``)."""
    if cycle is None:
        return 1.0
    return 1.0 - float(cycle["depth"]) / 2.0


class ZipfDemand:
    """The seeded arrival process a canonical demand spec describes.

    Base arrivals are Poisson at ``rate`` (thinned by the daily cycle),
    each marked with a Zipf(alpha)-drawn asset rank and a uniform peer;
    a flash crowd injects ``size`` extra requests for one rank spread
    over ``width`` seconds.  Everything is drawn from one
    ``random.Random(seed)``, so the trace is reproducible from the spec
    and seed alone.
    """

    def __init__(
        self, spec: DemandSpec, assets: int, peers: int, seed: int
    ) -> None:
        if peers < 1:
            raise ValueError("peers must be >= 1")
        self.spec = normalize_demand(spec)
        self.assets = int(assets)
        self.peers = int(peers)
        self.seed = int(seed)
        self.weights = zipf_weights(self.assets, float(self.spec["alpha"]))
        self._cumulative: List[float] = []
        acc = 0.0
        for w in self.weights:
            acc += w
            self._cumulative.append(acc)

    def trace(self, horizon: float) -> List[Request]:
        """The full request trace over ``[0, horizon)`` (time-sorted)."""
        if horizon <= 0:
            raise ValueError("horizon must be > 0")
        rng = random.Random(self.seed ^ 0x5EED_CD17)
        rate = float(self.spec["rate"])
        cycle = self.spec.get("daily_cycle")
        out: List[Request] = []
        t = 0.0
        while True:
            t += rng.expovariate(rate)
            if t >= horizon:
                break
            # Thinning: draw at peak rate, keep with the cycle's relative
            # rate — an exact (and seeded) nonhomogeneous Poisson sampler.
            if cycle is not None and rng.random() >= cycle_factor(t, cycle):
                continue
            rank = 1 + bisect_left(self._cumulative, rng.random())
            rank = min(rank, self.assets)
            out.append(Request(time=t, peer=rng.randrange(self.peers), rank=rank))
        flash = self.spec.get("flash_crowd")
        if flash is not None and float(flash["at"]) < horizon:
            at = float(flash["at"])
            width = float(flash["width"])
            size = int(flash["size"])
            rank = min(int(flash["rank"]), self.assets)
            for i in range(size):
                burst_t = at + width * i / size
                if burst_t >= horizon:
                    break
                out.append(
                    Request(time=burst_t, peer=rng.randrange(self.peers), rank=rank)
                )
        out.sort(key=lambda r: (r.time, r.peer, r.rank))
        return out


def demand_label(spec: DemandSpec) -> str:
    """Compact human-readable form of a canonical demand spec."""
    norm = normalize_demand(spec)
    label = f"zipf:{norm['alpha']:g}@{norm['rate']:g}"
    if "flash_crowd" in norm:
        flash = norm["flash_crowd"]
        label += f"+flash(r{flash['rank']}x{flash['size']}@{flash['at']:g}s)"  # type: ignore[index]
    if "daily_cycle" in norm:
        cycle = norm["daily_cycle"]
        label += f"+cycle({cycle['depth']:g}/{cycle['period']:g}s)"  # type: ignore[index]
    return label
