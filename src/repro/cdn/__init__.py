"""repro.cdn — a P2P CDN tier: catalogs, Zipf demand, origin policies.

Everything below this package is one torrent in one swarm.  The paper's
question — how mobile hosts degrade swarm economics and how wP2P repairs
them — becomes a *systems* question at CDN scale: a catalog of
hash-addressed assets (:mod:`repro.cdn.catalog`), a seeded Zipf
request-arrival process with flash-crowd and daily-cycle modifiers
(:mod:`repro.cdn.demand`), peers joining one swarm per requested asset
while all their connections share a single uplink
(:mod:`repro.cdn.scenario`), and an always-on origin seeder with
placement/retention policies (:mod:`repro.cdn.origin`).  The fluid
backend gets a per-asset-class surrogate (:mod:`repro.cdn.surrogate`)
so 10^4-asset catalogs integrate in microseconds.

The **workload axis** threads the spec/runner/CLI stack exactly like
``backend``/``strategies``/``content``: a canonical
``{"catalog": ..., "demand": ..., "origin": ...}`` mapping, validated
eagerly by :func:`normalize_workload`, installed ambiently around every
cell by ``Runner(workload=...)`` (the CLI's ``--catalog``/``--demand``),
and folded into spec hashes and cell digests **only when non-default**
— every pre-CDN digest stays byte-identical.

Ambient use, mirroring :mod:`repro.chaos` and :mod:`repro.coding`::

    from repro import cdn

    cdn.install({"catalog": "assets:16", "demand": "zipf:1.2"})
    try:
        run_scenario(...)   # every CdnScenario serves this workload
    finally:
        cdn.uninstall()
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

from .catalog import (
    PACKET_CATALOG_LIMIT,
    Asset,
    Catalog,
    CatalogSpec,
    normalize_catalog,
)
from .demand import (
    DemandSpec,
    Request,
    ZipfDemand,
    demand_label,
    normalize_demand,
    zipf_weights,
)
from .metrics import CdnMetrics
from .origin import POLICIES, Origin, OriginSpec, normalize_origin
from .scenario import CdnPeer, CdnScenario
from .surrogate import cdn_fluid_cell, rank_bands

__all__ = [
    "Asset",
    "Catalog",
    "CatalogSpec",
    "CdnMetrics",
    "CdnPeer",
    "CdnScenario",
    "DemandSpec",
    "Origin",
    "OriginSpec",
    "PACKET_CATALOG_LIMIT",
    "POLICIES",
    "Request",
    "WorkloadSpec",
    "ZipfDemand",
    "ambient_workload",
    "cdn_fluid_cell",
    "demand_label",
    "install",
    "installed",
    "normalize_catalog",
    "normalize_demand",
    "normalize_origin",
    "normalize_workload",
    "rank_bands",
    "uninstall",
    "workload_is_default",
    "workload_label",
    "zipf_weights",
]

WorkloadSpec = Union[Mapping[str, object], None]

_WORKLOAD_KEYS = ("catalog", "demand", "origin")


def normalize_workload(spec: WorkloadSpec) -> Optional[Dict[str, object]]:
    """Canonicalise and validate a workload mapping (eager).

    A workload bundles up to three sub-specs —
    ``{"catalog": ..., "demand": ..., "origin": ...}`` — each accepted
    in its mapping or CLI-string form and normalised by its own layer.
    ``None`` and ``{}`` mean "no workload" (the default: scenarios use
    their own parameters) and return ``None``.

    Raises :class:`ValueError` on unknown keys or malformed sub-specs,
    so a bad ``--catalog``/``--demand`` fails at Runner construction,
    never inside a worker mid-campaign.
    """
    if spec is None:
        return None
    if not isinstance(spec, Mapping):
        raise ValueError(f"workload must be a mapping, got {spec!r}")
    unknown = set(spec) - set(_WORKLOAD_KEYS)
    if unknown:
        raise ValueError(
            f"unknown workload keys {sorted(unknown)}; "
            f"expected {sorted(_WORKLOAD_KEYS)}"
        )
    out: Dict[str, object] = {}
    if spec.get("catalog") is not None:
        out["catalog"] = normalize_catalog(spec["catalog"])  # type: ignore[arg-type]
    if spec.get("demand") is not None:
        out["demand"] = normalize_demand(spec["demand"])  # type: ignore[arg-type]
    if spec.get("origin") is not None:
        out["origin"] = normalize_origin(spec["origin"])  # type: ignore[arg-type]
    return out or None


def workload_is_default(workload: Optional[Mapping[str, object]]) -> bool:
    """True when the workload changes nothing (no ambient axes set)."""
    return workload is None or not dict(workload)


def workload_label(spec: WorkloadSpec) -> str:
    """Compact human-readable form of a workload spec."""
    norm = normalize_workload(spec)
    if norm is None:
        return "default"
    parts = []
    catalog = norm.get("catalog")
    if catalog is not None:
        parts.append(f"catalog[{catalog['assets']}x{catalog['size_kib']}KiB]")  # type: ignore[index]
    demand = norm.get("demand")
    if demand is not None:
        parts.append(demand_label(demand))
    origin = norm.get("origin")
    if origin is not None:
        parts.append(str(origin["policy"]))  # type: ignore[index]
    return "+".join(parts)


# ----------------------------------------------------------------------
# Global default: every new CdnScenario (and fluid surrogate cell) gets
# the installed workload (the worker-process hook behind
# Runner(workload=...)).
# ----------------------------------------------------------------------
_default_workload: Optional[Dict[str, object]] = None


def install(workload: WorkloadSpec) -> None:
    """Give every *new* CDN scenario this workload until :func:`uninstall`.

    The spec is validated eagerly; installing an empty workload is a
    no-op (scenarios keep their own parameters).
    """
    global _default_workload
    _default_workload = normalize_workload(workload)


def uninstall() -> None:
    """Stop injecting a workload into new CDN scenarios."""
    global _default_workload
    _default_workload = None


def installed() -> bool:
    """True when new CDN scenarios get a non-default workload."""
    return not workload_is_default(_default_workload)


def ambient_workload() -> Optional[Dict[str, object]]:
    """The installed canonical workload, or None."""
    return dict(_default_workload) if _default_workload is not None else None
