"""Content-addressed on-disk result cache for simulation cells.

Each cached entry is one cell result, stored as JSON under a two-level
fan-out directory keyed by the cell's content digest (spec + cell key +
seed + :func:`~repro.runner.spec.code_version`).  Properties:

* **Correct by construction** — the digest covers every input including
  the library source, so a hit is always equivalent to re-running the
  cell; editing any ``repro`` source file invalidates everything.
* **Concurrency-safe** — writes go to a temp file and ``os.replace``
  into place, so parallel workers (or parallel CI jobs sharing a cache
  volume) never observe torn entries.
* **Corruption-tolerant** — an unreadable entry is treated as a miss
  and overwritten, never an error.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional, Tuple

_MISS = object()


def default_cache_dir() -> str:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``.repro-cache`` in cwd."""
    return os.environ.get("REPRO_CACHE_DIR", os.path.join(os.getcwd(), ".repro-cache"))


class ResultCache:
    """Get/put JSON values by content digest (see module docstring)."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest + ".json")

    def get(self, digest: str) -> Tuple[bool, object]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        try:
            with open(self._path(digest), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            value = entry["value"]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, digest: str, value: object, meta: Optional[dict] = None) -> None:
        """Store ``value`` (must be JSON data) under ``digest`` atomically."""
        path = self._path(digest)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        payload = json.dumps({"value": value, "meta": meta or {}})
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        """Number of entries on disk (walks the fan-out directories)."""
        count = 0
        if not os.path.isdir(self.root):
            return 0
        for dirpath, _, filenames in os.walk(self.root):
            count += sum(1 for f in filenames if f.endswith(".json"))
        return count
