"""The scenario base class and the ``@scenario`` registry.

A *scenario* is one declarative experiment: a name, a description, a
defaults mapping, and three methods —

* :meth:`Scenario.cells` enumerates the independent simulation cells
  (``(key, seed)`` pairs) the experiment consists of;
* :meth:`Scenario.run_cell` runs exactly one cell (one seeded
  simulation) and returns a plain-data value;
* :meth:`Scenario.assemble` folds the per-cell values back into an
  :class:`~repro.analysis.series.ExperimentResult`.

Because every cell is self-contained (the sim kernel's ``RngRegistry``
derives all randomness from the cell's seed), the
:class:`~repro.runner.runner.Runner` can execute cells in any order, on
any number of worker processes, or serve them from cache — the assembled
result is identical.

``@scenario`` registers a :class:`Scenario` subclass under its ``name``;
``repro.experiments`` registers one scenario per paper figure at import
time, so ``import repro.experiments`` populates the registry.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Type

from .spec import ScenarioSpec, freeze_params

CellKey = Tuple[object, ...]
Cell = Tuple[CellKey, int]
CellValues = Dict[Cell, object]


class UnknownScenarioError(KeyError):
    """Raised for a scenario name absent from the registry."""

    def __init__(self, name: str, known: Iterable[str]) -> None:
        known_names = ", ".join(sorted(known)) or "<none registered>"
        super().__init__(
            f"unknown scenario {name!r}; known scenarios: {known_names}"
        )
        self.name = name


class Scenario:
    """Base class for declarative experiments (see module docstring).

    Subclasses set :attr:`name`, :attr:`description`, and
    :attr:`defaults`, then implement :meth:`cells`, :meth:`run_cell`,
    and :meth:`assemble`.  Parameter overrides are validated against the
    defaults, so a typo'd key fails fast instead of silently running the
    default campaign.
    """

    name: str = ""
    description: str = ""
    defaults: Mapping[str, object] = {}
    #: Simulation backends this scenario supports, most-preferred first;
    #: the first entry is the default when the runner is not given one.
    #: Scenarios offering ``"fluid"`` implement :meth:`run_cell_fluid`.
    backends: Tuple[str, ...] = ("packet",)

    # ------------------------------------------------------------------
    # Parameters and spec construction
    # ------------------------------------------------------------------
    def params(self, overrides: Optional[Mapping[str, object]] = None) -> Dict[str, object]:
        """Defaults merged with ``overrides``, canonicalised to JSON types."""
        merged = dict(self.defaults)
        if overrides:
            unknown = sorted(set(overrides) - set(merged))
            if unknown:
                raise ValueError(
                    f"unknown parameter(s) {unknown} for scenario "
                    f"{self.name!r}; accepted: {sorted(merged)}"
                )
            merged.update(overrides)
        return freeze_params(merged)

    def spec(
        self,
        overrides: Optional[Mapping[str, object]] = None,
        backend: Optional[str] = None,
    ) -> ScenarioSpec:
        """A :class:`ScenarioSpec` for this scenario at the given params.

        ``backend=None`` selects the scenario's default (the first entry
        of :attr:`backends`).
        """
        params = self.params(overrides)
        seeds = sorted({seed for _, seed in self.cells(params)})
        return ScenarioSpec.create(
            self.name, params, seeds=seeds, description=self.description,
            backend=self.resolve_backend(backend),
        )

    def resolve_backend(self, backend: Optional[str]) -> str:
        """Validate ``backend`` against :attr:`backends` (None = default)."""
        if backend is None:
            return self.backends[0]
        if backend not in self.backends:
            raise ValueError(
                f"scenario {self.name!r} does not support backend "
                f"{backend!r} (supported: {', '.join(self.backends)})"
            )
        return backend

    # ------------------------------------------------------------------
    # The three hooks every scenario implements
    # ------------------------------------------------------------------
    def cells(self, params: Mapping[str, object]) -> Iterator[Cell]:
        """Yield every independent ``(key, seed)`` cell of the campaign."""
        raise NotImplementedError

    def run_cell(self, key: CellKey, seed: int, params: Mapping[str, object]) -> object:
        """Run one cell (one seeded simulation); return plain data."""
        raise NotImplementedError

    def run_cell_fluid(
        self, key: CellKey, seed: int, params: Mapping[str, object]
    ) -> object:
        """Run one cell on the mean-field fluid backend (:mod:`repro.scale`).

        Only scenarios listing ``"fluid"`` in :attr:`backends` implement
        this; the result must be plain data of the same shape
        :meth:`run_cell` returns so :meth:`assemble` works unchanged.
        """
        raise NotImplementedError(
            f"scenario {self.name!r} has no fluid backend "
            f"(supported: {', '.join(self.backends)})"
        )

    def run_cell_hybrid(
        self, key: CellKey, seed: int, params: Mapping[str, object]
    ) -> object:
        """Run one cell on the hybrid multi-resolution backend
        (:mod:`repro.scale.hybrid`: packet focal hosts in a fluid
        background).  Only scenarios listing ``"hybrid"`` in
        :attr:`backends` implement this."""
        raise NotImplementedError(
            f"scenario {self.name!r} has no hybrid backend "
            f"(supported: {', '.join(self.backends)})"
        )

    def cell_runner(self, backend: str):
        """The per-cell entry point for ``backend`` (validated name)."""
        runners = {
            "packet": self.run_cell,
            "fluid": self.run_cell_fluid,
            "hybrid": self.run_cell_hybrid,
        }
        try:
            return runners[backend]
        except KeyError:
            raise ValueError(f"unknown backend {backend!r}") from None

    def assemble(
        self,
        params: Mapping[str, object],
        values: CellValues,
        failures: List["CellFailureLike"],
    ):
        """Fold per-cell values into an ``ExperimentResult``.

        ``values`` maps ``(key, seed)`` to the cell's value; cells that
        failed (after retry) are absent and listed in ``failures``, so
        implementations aggregate over whatever survived.
        """
        raise NotImplementedError


class CellFailureLike:
    """Protocol stand-in: anything with ``key``/``seed``/``error``."""

    key: CellKey
    seed: int
    error: str


_REGISTRY: Dict[str, Scenario] = {}


def scenario(cls: Type[Scenario]) -> Type[Scenario]:
    """Class decorator: instantiate and register a :class:`Scenario`.

    >>> @scenario
    ... class Demo(Scenario):
    ...     name = "demo"
    ...     ...

    Re-registering a name raises — two experiments silently shadowing
    each other is exactly the failure mode a registry exists to prevent.
    (Re-evaluating the *same* class, e.g. via ``importlib.reload``, is
    allowed.)
    """
    instance = cls()
    if not instance.name:
        raise ValueError(f"scenario class {cls.__name__} must set a name")
    existing = _REGISTRY.get(instance.name)
    if existing is not None and type(existing).__qualname__ != cls.__qualname__:
        raise ValueError(f"scenario {instance.name!r} is already registered")
    _REGISTRY[instance.name] = instance
    return cls


def get_scenario(name: str) -> Scenario:
    """The registered scenario called ``name``.

    Raises :class:`UnknownScenarioError` (listing known names) otherwise.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(name, _REGISTRY) from None


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def collect(values: CellValues, key: CellKey) -> List[object]:
    """Values of every surviving cell with ``key``, in ascending seed order.

    The deterministic aggregation primitive: results arrive from workers
    in completion order, but assembly must not depend on it.
    """
    matching = [(seed, value) for (k, seed), value in values.items() if k == key]
    return [value for _, value in sorted(matching, key=lambda item: item[0])]
