"""Typed, hashable scenario specifications and content hashing.

A :class:`ScenarioSpec` pins down *everything* that determines a
scenario's results: the scenario name, the full parameter set (defaults
merged with overrides, canonicalised to JSON so ``(0.0, 5e-6)`` and
``[0.0, 5e-6]`` are the same spec), and the seeds its cells run under.
Two specs are equal exactly when they would produce identical results on
the same code, which makes the spec the natural cache key:
:func:`cell_digest` combines the spec identity with a cell's key/seed and
:func:`code_version` (a content hash over every ``repro`` source file) so
any code change invalidates previous results.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

#: The simulation backends a scenario can run on.  ``"packet"`` is the
#: packet-level discrete-event simulator (the ground truth); ``"fluid"``
#: is the :mod:`repro.scale` mean-field engine for very large swarms;
#: ``"hybrid"`` couples packet-level focal hosts to a fluid background
#: (:mod:`repro.scale.hybrid`).
BACKENDS: Tuple[str, ...] = ("packet", "fluid", "hybrid")


def canonical_json(value: object) -> str:
    """Canonical JSON text for ``value`` (sorted keys, no whitespace).

    Raises :class:`TypeError` when ``value`` contains anything JSON
    cannot represent — scenario parameters must be plain data so they
    can be hashed, cached, and shipped to worker processes.
    """
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"scenario parameters must be JSON-serialisable: {exc}"
        ) from exc


def freeze_params(params: Mapping[str, object]) -> Dict[str, object]:
    """Canonicalise a parameter mapping through a JSON round-trip.

    Tuples become lists, dict keys become strings — the exact value a
    worker process (or a cache hit) would see, so a spec built from
    tuples and one built from lists are the same spec.
    """
    return json.loads(canonical_json(dict(params)))


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-specified experiment: name + canonical params + seeds.

    Hashable and comparable by value; ``params_json`` (not the mapping
    itself) carries the parameter identity so the dataclass stays
    frozen/hashable while :attr:`params` offers the convenient dict view.

    ``backend`` names the simulation tier the cells run on (see
    :data:`BACKENDS`).  The default ``"packet"`` keeps pre-backend spec
    hashes and cell digests byte-identical, while any other backend is
    folded into both — fluid results can never collide with (or shadow)
    packet-level ground truth in the cache.

    ``strategies`` carries the canonical strategy mix
    (:func:`repro.strategy.normalize_mix` output as canonical JSON) the
    run installs around every cell; ``""`` is the default all-``reference``
    population.  It is folded into :meth:`spec_hash` and
    :func:`cell_digest` with the same only-when-non-default trick as the
    backend, so every pre-strategy digest is unchanged while mixed runs
    cache disjointly.

    ``content`` carries the canonical content mode
    (:func:`repro.coding.normalize_content` output as canonical JSON) —
    ``""`` is plain replication.  Folded in with the same
    only-when-non-default trick: default-content digests are
    byte-identical to the pre-codec era, while erasure-coded runs cache
    disjointly.

    ``workload`` carries the canonical CDN workload
    (:func:`repro.cdn.normalize_workload` output as canonical JSON) —
    ``""`` means scenarios use their own catalog/demand/origin
    parameters.  Same only-when-non-default folding: every pre-CDN
    digest is byte-identical, while workload-driven runs cache
    disjointly.
    """

    name: str
    params_json: str
    seeds: Tuple[int, ...] = ()
    description: str = field(default="", compare=False)
    backend: str = "packet"
    strategies: str = ""
    content: str = ""
    workload: str = ""

    @classmethod
    def create(
        cls,
        name: str,
        params: Optional[Mapping[str, object]] = None,
        seeds: Sequence[int] = (),
        description: str = "",
        backend: str = "packet",
        strategies: Optional[Mapping[str, object]] = None,
        content: Optional[Mapping[str, object]] = None,
        workload: Optional[Mapping[str, object]] = None,
    ) -> "ScenarioSpec":
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {', '.join(BACKENDS)}"
            )
        return cls(
            name=name,
            params_json=canonical_json(dict(params or {})),
            seeds=tuple(int(s) for s in seeds),
            description=description,
            backend=backend,
            strategies=canonical_json(dict(strategies)) if strategies else "",
            content=canonical_json(dict(content)) if content else "",
            workload=canonical_json(dict(workload)) if workload else "",
        )

    @property
    def params(self) -> Dict[str, object]:
        """The canonical parameter mapping (a fresh dict each call)."""
        return json.loads(self.params_json)

    def spec_hash(self) -> str:
        """Content hash of the spec itself (name + params + seeds).

        The backend is folded in only when it is not ``"packet"``, so
        hashes of ordinary packet-level specs are unchanged from before
        the backend axis existed.
        """
        body: Dict[str, object] = {
            "name": self.name, "params": self.params, "seeds": list(self.seeds)
        }
        if self.backend != "packet":
            body["backend"] = self.backend
        if self.strategies:
            body["strategies"] = json.loads(self.strategies)
        if self.content:
            body["content"] = json.loads(self.content)
        if self.workload:
            body["workload"] = json.loads(self.workload)
        payload = canonical_json(body)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def __str__(self) -> str:
        return f"{self.name}[{self.spec_hash()[:12]}]"


_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Content hash over every ``repro`` source file (cached per process).

    Keys the result cache alongside the spec, so editing *any* library
    code invalidates previously cached cells — stale results can never
    masquerade as fresh ones after a refactor.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, root).encode("utf-8"))
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def cell_digest(
    spec: ScenarioSpec,
    key: Tuple[object, ...],
    seed: int,
    code: Optional[str] = None,
    chaos: Optional[Mapping[str, object]] = None,
) -> str:
    """The content address of one (scenario, cell, seed) result.

    ``chaos`` is the runner's ambient fault-injection options
    (``{preset, intensity, horizon}``), folded in **only when set**:
    chaos deterministically changes results, so chaotic and clean runs
    of the same cell must occupy different cache addresses — while the
    digests of ordinary runs stay byte-identical to what they were
    before chaos existed.  The spec's backend is folded in the same way
    (only when not ``"packet"``), so fluid-backend results live at
    digests disjoint from every packet-level run — and so is the spec's
    strategy mix (only when non-default), keeping default-strategy cells
    at their pre-strategy-layer addresses while every distinct mix gets
    its own.  The spec's content mode follows the same rule: plain
    replication adds nothing, erasure-coded runs cache disjointly — and
    so does the spec's CDN workload (catalog/demand/origin), keeping
    every pre-CDN digest byte-identical.
    """
    body: Dict[str, object] = {
        "scenario": spec.name,
        "params": spec.params,
        "key": list(key),
        "seed": seed,
        "code": code if code is not None else code_version(),
    }
    if spec.backend != "packet":
        body["backend"] = spec.backend
    if chaos is not None:
        body["chaos"] = dict(chaos)
    if spec.strategies:
        body["strategies"] = json.loads(spec.strategies)
    if spec.content:
        body["content"] = json.loads(spec.content)
    if spec.workload:
        body["workload"] = json.loads(spec.workload)
    payload = canonical_json(body)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
