"""Declarative scenario registry and the parallel, cache-aware runner.

This package turns the one-off figure scripts into one orchestrated job
system.  Three pieces cooperate:

* :mod:`repro.runner.spec` — :class:`ScenarioSpec`, a typed, hashable,
  canonical description of *what* to run (scenario name + parameters +
  seeds) plus the content hash that keys the result cache;
* :mod:`repro.runner.registry` — the :class:`Scenario` base class and the
  :func:`scenario` class decorator that registers every experiment under
  a name (``repro.experiments`` registers one scenario per paper figure);
* :mod:`repro.runner.runner` — the :class:`Runner`, which fans a
  scenario's independent simulation cells out over ``multiprocessing``
  workers, captures per-cell failures (retry once, then report — a dead
  seed is never fatal), and consults the content-addressed
  :class:`~repro.runner.cache.ResultCache` so identical cells are never
  simulated twice.

Determinism contract: each cell is a pure function of
``(code, scenario, cell key, seed, params)``, so serial (``jobs=1``) and
parallel (``jobs=N``) execution of the same spec produce bit-identical
per-seed results, and a cached value is indistinguishable from a fresh
one (every value is canonicalised through JSON either way).

Quick use::

    from repro.runner import run_scenario
    result = run_scenario("fig2a", {"runs": 2}, jobs=4)
    print(result.table())
"""

from .cache import ResultCache, default_cache_dir
from .registry import (
    Scenario,
    UnknownScenarioError,
    collect,
    get_scenario,
    scenario,
    scenario_names,
)
from .runner import (
    CellFailure,
    CellTimeout,
    Runner,
    RunnerStats,
    ScenarioRun,
    print_progress,
    run_scenario,
)
from .spec import BACKENDS, ScenarioSpec, canonical_json, code_version, freeze_params

__all__ = [
    "BACKENDS",
    "CellFailure",
    "CellTimeout",
    "ResultCache",
    "Runner",
    "RunnerStats",
    "Scenario",
    "ScenarioRun",
    "ScenarioSpec",
    "UnknownScenarioError",
    "canonical_json",
    "code_version",
    "collect",
    "default_cache_dir",
    "freeze_params",
    "get_scenario",
    "print_progress",
    "run_scenario",
    "scenario",
    "scenario_names",
]
