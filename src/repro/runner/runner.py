"""The parallel, cache-aware experiment runner.

:class:`Runner` executes a scenario's independent cells — serially in
process for ``jobs=1``, or fanned out over a ``multiprocessing`` pool
for ``jobs=N`` — then hands the collected values to the scenario's
``assemble`` hook.  Around that core it provides:

* **Caching** — give the runner a :class:`~repro.runner.cache.ResultCache`
  and every cell is looked up by content digest before it is simulated;
  a warm cache re-run executes zero simulations.
* **Failure capture** — a cell that raises is retried once (in the same
  worker) and, if it dies again, recorded as a :class:`CellFailure`
  with its traceback; the campaign continues and ``assemble`` aggregates
  over the surviving seeds.  A dead seed is reported, never fatal.
* **Observability** — per-cell wall timing, cache hit/miss counters and
  retry counts flow into a :class:`~repro.obs.metrics.MetricsRegistry`
  (``runner.*`` metrics) and an optional progress callback.
* **Determinism** — values are canonicalised through JSON whether they
  came from a worker or the cache, and aggregation order is fixed by
  the cell enumeration, so ``jobs=1`` and ``jobs=N`` produce
  bit-identical results.

When global trace sinks are installed (``repro.obs.tracing.install`` /
the CLI's ``--trace``), the runner degrades to serial execution: sinks
live in this process, and simulators created inside pool workers would
escape capture.
"""

from __future__ import annotations

import importlib
import json
import multiprocessing
import signal
import sys
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from ..obs import tracing
from .cache import ResultCache
from .registry import Cell, CellKey, CellValues, Scenario, get_scenario
from .spec import ScenarioSpec, cell_digest, code_version

Progress = Callable[[str], None]


class CellTimeout(Exception):
    """A cell exceeded the runner's per-cell wall-clock budget."""


@contextmanager
def _cell_deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`CellTimeout` if the block runs longer than ``seconds``.

    Implemented with ``SIGALRM``/``setitimer`` so it fires even when the
    cell is stuck inside a single long-running call (the deadlock case
    the timeout exists for).  Signals only work on the main thread of a
    process — which is exactly where cells run, both inline (``jobs=1``)
    and in pool workers — so on platforms without ``SIGALRM`` (Windows)
    or off the main thread the guard degrades to a no-op rather than
    failing the cell.
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        raise CellTimeout(f"cell exceeded {seconds:g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class CellFailure:
    """One cell that kept failing after its retry."""

    key: CellKey
    seed: int
    error: str
    attempts: int

    def summary(self) -> str:
        last_line = self.error.strip().splitlines()[-1] if self.error else "?"
        return f"cell {self.key!r} seed {self.seed}: {last_line} ({self.attempts} attempts)"


@dataclass
class RunnerStats:
    """What one :meth:`Runner.run` actually did."""

    total_cells: int = 0
    executed: int = 0
    cache_hits: int = 0
    failed: int = 0
    retries: int = 0
    elapsed_s: float = 0.0
    cell_seconds: Dict[Cell, float] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.total_cells} cells: {self.executed} executed, "
            f"{self.cache_hits} cache hits, {self.failed} failed, "
            f"{self.retries} retries [{self.elapsed_s:.1f}s]"
        )


@dataclass
class ScenarioRun:
    """A completed scenario: the assembled result plus the raw material."""

    spec: ScenarioSpec
    result: object  # ExperimentResult
    values: CellValues
    failures: List[CellFailure]
    stats: RunnerStats


def _canonical_value(value: object) -> object:
    """Round-trip a cell value through JSON.

    Executed and cached values pass through the identical
    transformation, so a warm-cache run is bit-identical to a cold one.
    """
    return json.loads(json.dumps(value))


def _execute_cell(
    payload: Tuple[
        str, str, list, int, Mapping[str, object], int, bool,
        Optional[float], Optional[Mapping[str, object]], str,
        Optional[Mapping[str, Mapping[str, float]]],
        Optional[Mapping[str, object]],
        Optional[Mapping[str, object]],
    ]
):
    """Worker entry point: run one cell, retrying once on failure.

    Module-level (picklable) and self-bootstrapping: it imports the
    scenario's defining module first, so it works under both ``fork``
    and ``spawn`` start methods.  When the payload's audit flag is set,
    invariant auditing (:mod:`repro.audit`) is installed around the cell
    so every simulator the cell builds is checked; a violation surfaces
    as an ordinary cell failure carrying the ``AuditViolation``
    traceback.  When chaos options are present, :mod:`repro.chaos` is
    installed the same way, so every scenario the cell builds gets the
    fault schedule — and a strategy mix (:mod:`repro.strategy`) likewise,
    so strategic peer populations reach scenarios that build their own
    swarms — and a content mode (:mod:`repro.coding`) likewise, so
    erasure-coded piece pipelines reach them too — and a CDN workload
    (:mod:`repro.cdn`) likewise, so catalog/demand/origin presets reach
    every CDN scenario the cell builds.  A :class:`CellTimeout` (the ``cell_timeout``
    budget expiring) is terminal: a cell that ran out of wall clock once
    will again, so it fails immediately with no retry.
    """
    (
        module_name, scenario_name, key_list, seed, params, retries,
        audit_on, cell_timeout, chaos_options, backend, strategy_mix,
        content, workload,
    ) = payload
    importlib.import_module(module_name)
    scn = get_scenario(scenario_name)
    run_cell = scn.cell_runner(backend)
    key = tuple(key_list)
    attempts = 0
    start = time.perf_counter()
    if audit_on:
        from .. import audit as _audit

        _audit.install()
    if chaos_options is not None:
        from .. import chaos as _chaos

        _chaos.install(
            str(chaos_options["preset"]),
            intensity=float(chaos_options["intensity"]),  # type: ignore[arg-type]
            horizon=float(chaos_options["horizon"]),      # type: ignore[arg-type]
        )
    if strategy_mix is not None:
        from .. import strategy as _strategy

        _strategy.install_mix(strategy_mix)
    if content is not None:
        from .. import coding as _coding

        _coding.install(content)
    if workload is not None:
        from .. import cdn as _cdn

        _cdn.install(workload)
    try:
        while True:
            attempts += 1
            try:
                with _cell_deadline(cell_timeout):
                    value = run_cell(key, seed, params)
            except CellTimeout:
                return (
                    key_list, seed, False, traceback.format_exc(),
                    time.perf_counter() - start, attempts,
                )
            except Exception:
                if attempts > retries:
                    return (
                        key_list, seed, False, traceback.format_exc(),
                        time.perf_counter() - start, attempts,
                    )
            else:
                return (
                    key_list, seed, True, _canonical_value(value),
                    time.perf_counter() - start, attempts,
                )
    finally:
        if workload is not None:
            _cdn.uninstall()
        if content is not None:
            _coding.uninstall()
        if strategy_mix is not None:
            _strategy.uninstall_mix()
        if chaos_options is not None:
            _chaos.uninstall()
        if audit_on:
            _audit.uninstall()


def _pool_context() -> multiprocessing.context.BaseContext:
    """``fork`` where available (fast, inherits registrations), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class Runner:
    """Parallel, cache-aware executor for registered scenarios.

    >>> runner = Runner(jobs=4, cache=ResultCache())    # doctest: +SKIP
    >>> run = runner.run("fig2a", {"runs": 2})          # doctest: +SKIP
    >>> print(run.result.table(), run.stats.summary())  # doctest: +SKIP

    ``jobs=1`` executes cells inline (no pool); ``jobs=N`` uses ``N``
    worker processes.  ``cache=None`` disables caching entirely.

    ``cell_timeout`` bounds each cell's wall-clock time: a cell that
    exceeds it becomes a :class:`CellFailure` (no retry) instead of
    hanging the campaign.  ``chaos`` names a :mod:`repro.chaos` preset
    to install around every cell; chaotic results are deterministic, so
    they stay cacheable — under a digest that folds in the chaos
    options, disjoint from the clean run's.

    ``strategy`` names a single :mod:`repro.strategy` strategy the whole
    peer population runs; ``strategy_mix`` is the general name→fraction
    form (optionally per population: ``{"mobile": {...}}``).  Either is
    installed ambiently around every cell, and — like chaos — folded
    into the spec hash and cell digests only when the mix is not the
    pure-``reference`` default, so ordinary runs keep their addresses.

    ``content`` selects the content mode (:mod:`repro.coding`) —
    ``"replication"`` (the default pipeline), ``"group:K/N"`` k-of-n
    erasure coding, or a mapping.  Installed ambiently around every cell
    and folded into digests only when non-default, exactly like the
    strategy mix.

    ``workload`` is the CDN workload axis (:mod:`repro.cdn`) — a
    ``{"catalog": ..., "demand": ..., "origin": ...}`` mapping (each
    sub-spec in its mapping or CLI-string form, e.g. the ``--catalog``/
    ``--demand`` flags).  Installed ambiently around every cell so CDN
    scenarios serve it in place of their own parameters, and folded into
    digests only when non-default.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        retries: int = 1,
        progress: Optional[Progress] = None,
        metrics: Optional[MetricsRegistry] = None,
        audit: bool = False,
        cell_timeout: Optional[float] = None,
        chaos: Optional[str] = None,
        chaos_intensity: float = 1.0,
        chaos_horizon: float = 300.0,
        backend: Optional[str] = None,
        strategy: Optional[str] = None,
        strategy_mix: Optional[Mapping[str, object]] = None,
        content=None,
        workload: Optional[Mapping[str, object]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive")
        self.jobs = jobs
        # An audited run must actually simulate: cached values were (or
        # would be) produced without the checkers, so caching is disabled
        # in both directions while auditing.
        self.cache = None if audit else cache
        self.audit = audit
        self.retries = retries
        self.progress = progress
        self.cell_timeout = cell_timeout
        # None = per-scenario default (first entry of Scenario.backends);
        # resolved and validated against the scenario inside run().
        self.backend = backend
        self.chaos_options: Optional[Dict[str, object]] = None
        if chaos is not None:
            from ..chaos import preset_schedule

            # Validate eagerly so a bad preset fails at construction.
            preset_schedule(chaos, chaos_intensity, chaos_horizon)
            self.chaos_options = {
                "preset": chaos,
                "intensity": float(chaos_intensity),
                "horizon": float(chaos_horizon),
            }
        if strategy is not None and strategy_mix is not None:
            raise ValueError("pass either strategy or strategy_mix, not both")
        self.strategy_mix: Optional[Dict[str, Dict[str, float]]] = None
        mix_input = (
            {"all": {strategy: 1.0}} if strategy is not None else strategy_mix
        )
        if mix_input is not None:
            from .. import strategy as strategy_layer

            # Validate eagerly (unknown names / bad fractions fail here);
            # a pure-reference mix is the default and keeps digests as-is.
            normalized = strategy_layer.normalize_mix(mix_input)
            if not strategy_layer.mix_is_default(normalized):
                self.strategy_mix = normalized
        self.content: Optional[Dict[str, object]] = None
        if content is not None:
            from .. import coding as coding_layer

            # Validate eagerly; plain replication is the default and
            # keeps digests exactly where they were.
            normalized_content = coding_layer.normalize_content(content)
            if not coding_layer.content_is_default(normalized_content):
                self.content = normalized_content
        self.workload: Optional[Dict[str, object]] = None
        if workload is not None:
            from .. import cdn as cdn_layer

            # Validate eagerly (malformed catalog/demand/origin specs
            # fail here); an empty workload is the default and keeps
            # digests exactly where they were.
            normalized_workload = cdn_layer.normalize_workload(workload)
            if not cdn_layer.workload_is_default(normalized_workload):
                self.workload = normalized_workload
        # `is not None`, not truthiness: an empty registry is falsy (len 0).
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(clock=time.perf_counter)
        )

    # ------------------------------------------------------------------
    def run(
        self,
        name_or_scenario,
        overrides: Optional[Mapping[str, object]] = None,
    ) -> ScenarioRun:
        """Run one scenario end-to-end and assemble its result."""
        scn: Scenario = (
            name_or_scenario
            if isinstance(name_or_scenario, Scenario)
            else get_scenario(name_or_scenario)
        )
        params = scn.params(overrides)
        backend = scn.resolve_backend(self.backend)
        cells: List[Cell] = [(tuple(key), seed) for key, seed in scn.cells(params)]
        spec = ScenarioSpec.create(
            scn.name, params,
            seeds=sorted({seed for _, seed in cells}),
            description=scn.description,
            backend=backend,
            strategies=self.strategy_mix,
            content=self.content,
            workload=self.workload,
        )

        start = time.perf_counter()
        stats = RunnerStats(total_cells=len(cells))
        values: CellValues = {}
        failures: List[CellFailure] = []

        # Cache probe: anything already known is served without simulating.
        pending: List[Cell] = []
        code = code_version() if self.cache is not None else ""
        for cell in cells:
            if self.cache is not None:
                hit, value = self.cache.get(
                    cell_digest(spec, cell[0], cell[1], code, chaos=self.chaos_options)
                )
                if hit:
                    values[cell] = value
                    stats.cache_hits += 1
                    continue
            pending.append(cell)

        jobs = min(self.jobs, max(len(pending), 1))
        if jobs > 1 and tracing.installed():
            # Global trace sinks live in this process; simulators built in
            # pool workers would escape them.  Trace implies serial.
            self._emit_progress(
                f"[{scn.name}] trace sinks installed -> running serially"
            )
            jobs = 1

        module_name = type(scn).__module__
        payloads = [
            (
                module_name, scn.name, list(key), seed, params, self.retries,
                self.audit, self.cell_timeout, self.chaos_options, backend,
                self.strategy_mix, self.content, self.workload,
            )
            for key, seed in pending
        ]

        done = stats.cache_hits
        if payloads:
            if jobs == 1:
                outcomes = map(_execute_cell, payloads)
            else:
                pool = _pool_context().Pool(processes=jobs)
                outcomes = pool.imap_unordered(_execute_cell, payloads)
            try:
                for key_list, seed, ok, value, duration, attempts in outcomes:
                    cell = (tuple(key_list), seed)
                    stats.executed += 1
                    stats.retries += attempts - 1
                    stats.cell_seconds[cell] = duration
                    self.metrics.histogram("runner.cell_seconds").observe(duration)
                    if ok:
                        values[cell] = value
                        if self.cache is not None:
                            self.cache.put(
                                cell_digest(
                                    spec, cell[0], cell[1], code,
                                    chaos=self.chaos_options,
                                ),
                                value,
                                meta={
                                    "scenario": scn.name,
                                    "seed": seed,
                                    "key": key_list,
                                    "seconds": duration,
                                },
                            )
                    else:
                        failure = CellFailure(cell[0], seed, value, attempts)
                        failures.append(failure)
                        stats.failed += 1
                        self._emit_progress(f"[{scn.name}] FAILED {failure.summary()}")
                    done += 1
                    self._emit_progress(
                        f"[{scn.name}] {done}/{stats.total_cells} cells "
                        f"({time.perf_counter() - start:.1f}s)"
                    )
            finally:
                if jobs > 1:
                    pool.close()
                    pool.join()

        stats.elapsed_s = time.perf_counter() - start
        self.metrics.counter("runner.cells").add(stats.total_cells)
        self.metrics.counter("runner.executed").add(stats.executed)
        self.metrics.counter("runner.cache_hits").add(stats.cache_hits)
        self.metrics.counter("runner.failures").add(stats.failed)
        self.metrics.counter("runner.retries").add(stats.retries)

        failures.sort(key=lambda f: (repr(f.key), f.seed))
        result = scn.assemble(params, values, failures)
        return ScenarioRun(
            spec=spec, result=result, values=values, failures=failures, stats=stats
        )

    # ------------------------------------------------------------------
    def _emit_progress(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)


def print_progress(line: str) -> None:
    """A ready-made progress callback: one line per event to stderr."""
    print(line, file=sys.stderr, flush=True)


def run_scenario(
    name: str,
    overrides: Optional[Mapping[str, object]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Progress] = None,
    audit: bool = False,
    cell_timeout: Optional[float] = None,
    chaos: Optional[str] = None,
    chaos_intensity: float = 1.0,
    chaos_horizon: float = 300.0,
    backend: Optional[str] = None,
    strategy: Optional[str] = None,
    strategy_mix: Optional[Mapping[str, object]] = None,
    content=None,
    workload: Optional[Mapping[str, object]] = None,
):
    """Run a registered scenario and return its ``ExperimentResult``.

    The convenience front door used by the legacy ``fig*()`` wrappers,
    the benchmarks, and ``scripts/generate_experiments_md.py``.  For the
    failure list and runner statistics, use :class:`Runner` directly.
    """
    runner = Runner(
        jobs=jobs, cache=cache, progress=progress, audit=audit,
        cell_timeout=cell_timeout, chaos=chaos,
        chaos_intensity=chaos_intensity, chaos_horizon=chaos_horizon,
        backend=backend, strategy=strategy, strategy_mix=strategy_mix,
        content=content, workload=workload,
    )
    return runner.run(name, overrides).result
