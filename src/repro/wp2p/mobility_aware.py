"""Mobility-Aware operations (MA) — wP2P §4.3.

* **Mobility-aware Fetching (MF)**: fetch the next piece sequentially with
  probability ``1 - pr`` and rarest-first with probability ``pr``, where
  ``pr`` grows with download progress / connection stability
  ("exponentially decreasing selfishness").  Early in a download — when a
  disconnection would strand useless random pieces — the client behaves
  like a streaming fetcher; once it has proven stable it converges to
  standard rarest-first altruism.

* **Role Reversal (RR)**: when the client detects it has moved (IP change /
  loss of all live peers), it immediately re-initiates connections to its
  remembered peers as a *client*, instead of waiting minutes for fixed
  peers or the tracker to rediscover its new address.  Serving data is
  unaffected — BitTorrent peers serve on connections regardless of who
  initiated them.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

from ..bittorrent.selection import PieceSelector, SelectionContext, make_selector

PrSchedule = Callable[[SelectionContext], float]


def linear_progress_schedule(ctx: SelectionContext) -> float:
    """pr equals the downloaded fraction — the paper's evaluation setting
    (§5.2.3: "we set the value of pr to be equal to the downloaded
    percentage of file")."""
    return min(1.0, max(0.0, ctx.progress))


def exponential_progress_schedule(p0: float = 0.2) -> PrSchedule:
    """Exponentially increasing altruism: pr(0) = p0, pr(1) = 1.

    ``pr = p0 * exp(k * progress)`` with ``k = ln(1/p0)`` — the §4.3
    description ("uses a small value (say, 20%) for pr, and exponentially
    increases pr as it downloads increasing fractions of the total file").
    """
    if not 0 < p0 <= 1:
        raise ValueError("p0 must be in (0, 1]")
    k = math.log(1.0 / p0)

    def schedule(ctx: SelectionContext) -> float:
        return min(1.0, p0 * math.exp(k * min(1.0, max(0.0, ctx.progress))))

    return schedule


def stability_schedule(tau: float, connected_since: Callable[[], float]) -> PrSchedule:
    """pr driven by time since the last disconnection (network stability):
    ``pr = 1 - exp(-t_stable / tau)``."""
    if tau <= 0:
        raise ValueError("tau must be positive")

    def schedule(ctx: SelectionContext) -> float:
        stable_for = max(0.0, ctx.now - connected_since())
        return 1.0 - math.exp(-stable_for / tau)

    return schedule


class MobilityAwareSelector(PieceSelector):
    """Probabilistic blend of sequential and rarest-first selection."""

    name = "mobility-aware"

    def __init__(self, pr_schedule: Optional[PrSchedule] = None) -> None:
        self.pr_schedule = pr_schedule or linear_progress_schedule
        # Registry-resolved, so replacing a registered built-in swaps the
        # halves of the blend everywhere, this selector included.
        self._rarest = make_selector("rarest-first")
        self._sequential = make_selector("sequential")
        self.rarest_choices = 0
        self.sequential_choices = 0
        # Optional structured tracing (repro.obs.tracing.TraceBus), wired
        # by WP2PClient; fetch-mode *flips* (sequential <-> rarest) are the
        # interesting signal, so only transitions are emitted.  ``owner``
        # (the client name, also wired by WP2PClient) tags the events so
        # per-client streams stay distinguishable.
        self.trace = None
        self.owner: Optional[str] = None
        self._last_mode: Optional[str] = None

    def choose(self, candidates: Sequence[int], ctx: SelectionContext) -> Optional[int]:
        if not candidates:
            return None
        pr = self.pr_schedule(ctx)
        if ctx.rng.random() < pr:
            self.rarest_choices += 1
            mode, selector = "rarest", self._rarest
        else:
            self.sequential_choices += 1
            mode, selector = "sequential", self._sequential
        if mode != self._last_mode:
            self._last_mode = mode
            if self.trace is not None and self.trace.enabled:
                self.trace.event(
                    "wp2p", "ma_fetch_mode", mode=mode, client=self.owner,
                    pr=round(pr, 4), progress=round(ctx.progress, 4),
                )
        return selector.choose(candidates, ctx)
