"""The wP2P client: all three components integrated (paper §4.4).

``WP2PClient`` is a drop-in replacement for
:class:`~repro.bittorrent.client.BitTorrentClient` on a mobile host.  It is
fully backward compatible on the wire — fixed peers see a normal BitTorrent
peer — but locally it runs:

* **AM** (Age-based Manipulation) as a Netfilter pair on the host,
* **IA**: the LIHD upload controller (when ``lihd_u_max`` is set) and
  identity retention across handoffs,
* **MA**: mobility-aware fetching as the piece selector and role reversal
  as the IP-change policy.

Each component can be toggled independently, which is how the evaluation
benchmarks isolate them exactly as the paper's §5.2 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..bittorrent.client import BitTorrentClient, ClientConfig
from ..bittorrent.metainfo import Torrent
from ..bittorrent.selection import PieceSelector
from ..net.host import Host
from ..sim import Simulator
from .age_manipulation import DEFAULT_GAMMA_BYTES, AgeBasedManipulation
from .incentive_aware import IdentityRetention, LIHDController
from .mobility_aware import MobilityAwareSelector, PrSchedule


@dataclass
class WP2PConfig(ClientConfig):
    """wP2P knobs on top of the base client configuration."""

    # Age-based Manipulation
    am_enabled: bool = True
    am_gamma_bytes: int = DEFAULT_GAMMA_BYTES
    am_rtt_estimate: float = 0.2
    am_dupack_modulus: int = 4
    # Incentive-Aware operations
    identity_retention: bool = True
    lihd_u_max: Optional[float] = None  # bytes/s; None disables LIHD
    lihd_alpha: float = 10_240.0
    lihd_beta: float = 10_240.0
    lihd_interval: float = 5.0
    lihd_u_floor: float = 2_048.0
    # Mobility-Aware operations
    mobility_aware_fetching: bool = True
    role_reversal: bool = True
    role_reversal_delay: float = 0.5


def wp2p_ip_change_policy(client: "WP2PClient", old, new) -> None:
    """IP-change handling with identity retention and role reversal.

    Unlike the deployed-client default (task re-init, fresh peer ID, wait
    for the tracker), wP2P re-announces under the *same* peer ID — so the
    tracker updates the existing swarm record in place and remote-peer
    credit keyed to the ID survives — and immediately re-initiates
    connections to the peers it remembers.
    """
    wcfg = client.wconfig
    keep_id = wcfg.identity_retention
    if wcfg.role_reversal:
        client.schedule_task_restart(
            new_peer_id=not keep_id,
            delay=wcfg.role_reversal_delay,
            forget_peers=False,
        )
    else:
        client.schedule_task_restart(new_peer_id=not keep_id)


class WP2PClient(BitTorrentClient):
    """Mobile-host BitTorrent client with the wP2P solution suite."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        torrent: Torrent,
        complete: bool = False,
        selector: Optional[PieceSelector] = None,
        config: Optional[WP2PConfig] = None,
        name: Optional[str] = None,
        pr_schedule: Optional[PrSchedule] = None,
        initial_pieces=None,
        strategy=None,
        codec=None,
        upload_bucket=None,
    ) -> None:
        wconfig = config or WP2PConfig()
        if selector is None and wconfig.mobility_aware_fetching:
            # MA fetching outranks a strategy's selector preference: it is
            # the wP2P component under test, while strategies primarily
            # carry choking behaviour (which composes freely with it).
            selector = MobilityAwareSelector(pr_schedule)
        super().__init__(
            sim, host, torrent,
            complete=complete, selector=selector, config=wconfig, name=name,
            initial_pieces=initial_pieces, strategy=strategy, codec=codec,
            upload_bucket=upload_bucket,
        )
        # The base constructor may have replaced the config with a copy
        # carrying strategy overrides; keep wconfig pointing at the live one.
        self.wconfig: WP2PConfig = self.config  # type: ignore[assignment]
        self.identity = IdentityRetention()
        self.identity.remember(torrent.info_hash, self.peer_id)
        if isinstance(self.selector, MobilityAwareSelector):
            self.selector.trace = sim.trace
            self.selector.owner = self.name

        self.am: Optional[AgeBasedManipulation] = None
        if wconfig.am_enabled:
            self.am = AgeBasedManipulation(
                sim, host,
                gamma_bytes=wconfig.am_gamma_bytes,
                rtt_estimate=wconfig.am_rtt_estimate,
                dupack_modulus=wconfig.am_dupack_modulus,
            )

        self.lihd: Optional[LIHDController] = None
        if wconfig.lihd_u_max is not None:
            self.lihd = LIHDController(
                self, wconfig.lihd_u_max,
                alpha=wconfig.lihd_alpha,
                beta=wconfig.lihd_beta,
                interval=wconfig.lihd_interval,
                u_floor=wconfig.lihd_u_floor,
            )

        self.ip_change_policy = wp2p_ip_change_policy
        self.reconnections = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        super().start()
        if self.am is not None:
            self.am.install()
        if self.lihd is not None:
            self.lihd.start()

    def stop(self, announce: bool = True) -> None:
        if self.am is not None:
            self.am.uninstall()
        if self.lihd is not None:
            self.lihd.stop()
        super().stop(announce=announce)

    # ------------------------------------------------------------------
    def restart_task(
        self, new_peer_id: bool = True, forget_peers: Optional[bool] = None
    ) -> None:
        """Identity retention: restore the swarm's stored peer ID on
        re-initiation instead of honouring ``new_peer_id``."""
        if self.wconfig.identity_retention:
            stored = self.identity.recall(self.torrent.info_hash)
            if stored is not None:
                new_peer_id = False
                self.peer_id = stored
        self.reconnections += 1
        if self.sim.trace.enabled:
            self.sim.trace.event(
                "wp2p", "task_reinit", client=self.name,
                identity_retained=not new_peer_id,
                role_reversal=not (forget_peers or new_peer_id),
                reconnections=self.reconnections,
            )
        super().restart_task(new_peer_id=new_peer_id, forget_peers=forget_peers)
        self.identity.remember(self.torrent.info_hash, self.peer_id)
