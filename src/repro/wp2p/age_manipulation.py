"""Age-based Manipulation (AM) — wP2P §4.1.

A Netfilter-style packet filter on the mobile host that adapts the
bi-directional TCP stream to the wireless leg:

* **YOUNG connections** (remote sender's congestion window below γ ≈ 6 MSS ≈
  9 KB): any new ACK piggybacked on an outgoing data packet is *decoupled* —
  a 40-byte pure ACK is injected ahead of the data packet, so the ACK
  survives bit errors that would kill the long data frame.  Small windows
  are where ACK losses actually hurt throughput.
* **MATURE connections**: during a DUPACK burst, one in every
  ``dupack_modulus`` (paper: 4) outgoing pure DUPACKs is dropped, so the
  pure-ACK flood TCP's never-piggyback-DUPACKs rule mandates does not keep
  the wireless leg as loaded after congestion as before it (§3.2).

The remote congestion window is estimated exactly as the paper's prototype
does: "the amount of data sent by the remote peer in every round trip time
... as an estimate of that peer's TCP congestion window for the next rtt".
Everything here is local to the mobile host and invisible to fixed peers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.host import Host
from ..net.packet import Packet
from ..sim import Simulator
from ..tcp.segment import ACK, FIN, RST, SYN, TCPSegment

YOUNG = "young"
MATURE = "mature"

FlowKey = Tuple[int, str, int]  # (local port, remote ip, remote port)

DEFAULT_GAMMA_BYTES = 9_000
"""The paper's threshold: ~6 full packets (γ = 6, per [10])."""


@dataclass
class _FlowState:
    """Per-connection state the AM module maintains."""

    window_start: float = 0.0
    window_bytes: int = 0
    cwnd_estimate: int = 0
    status: str = YOUNG
    last_pure_ack: Optional[int] = None
    dupack_count: int = 0
    last_egress_ack: int = -1


class AgeBasedManipulation:
    """The AM egress/ingress filter pair for one mobile host."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        gamma_bytes: int = DEFAULT_GAMMA_BYTES,
        rtt_estimate: float = 0.2,
        dupack_modulus: int = 4,
    ) -> None:
        if gamma_bytes <= 0:
            raise ValueError("gamma_bytes must be positive")
        if rtt_estimate <= 0:
            raise ValueError("rtt_estimate must be positive")
        if dupack_modulus < 2:
            raise ValueError("dupack_modulus must be >= 2")
        self.sim = sim
        self.host = host
        self.gamma_bytes = gamma_bytes
        self.rtt_estimate = rtt_estimate
        self.dupack_modulus = dupack_modulus
        self._flows: Dict[FlowKey, _FlowState] = {}
        self._installed = False

        # Statistics.
        self.acks_decoupled = 0
        self.dupacks_dropped = 0
        self.dupacks_seen = 0

        audit = sim.audit
        if audit is not None:
            audit.register_am(self)

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Register on the host's Netfilter hooks (idempotent)."""
        if self._installed:
            return
        self.host.netfilter.ingress.register(self._ingress)
        self.host.netfilter.egress.register(self._egress)
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        self.host.netfilter.ingress.unregister(self._ingress)
        self.host.netfilter.egress.unregister(self._egress)
        self._installed = False

    @property
    def installed(self) -> bool:
        return self._installed

    def flow_status(self, key: FlowKey) -> str:
        flow = self._flows.get(key)
        return flow.status if flow is not None else YOUNG

    # ------------------------------------------------------------------
    # Ingress: estimate the remote sender's congestion window.
    # ------------------------------------------------------------------
    def _ingress(self, packet: Packet) -> Optional[List[Packet]]:
        segment = packet.payload
        if not isinstance(segment, TCPSegment):
            return None
        if segment.has(RST) or segment.has(FIN):
            self._flows.pop((segment.dst_port, packet.src, segment.src_port), None)
            return None
        if segment.payload_len <= 0:
            return None
        key = (segment.dst_port, packet.src, segment.src_port)
        flow = self._flows.get(key)
        now = self.sim.now
        if flow is None:
            flow = _FlowState(window_start=now)
            self._flows[key] = flow
        if now - flow.window_start >= self.rtt_estimate:
            flow.cwnd_estimate = flow.window_bytes
            status = YOUNG if flow.cwnd_estimate < self.gamma_bytes else MATURE
            if status != flow.status and self.sim.trace.enabled:
                self.sim.trace.event(
                    "wp2p", "am_state", host=self.host.name,
                    flow=f"{key[0]}<-{key[1]}:{key[2]}",
                    status=status, cwnd_estimate=flow.cwnd_estimate,
                )
            flow.status = status
            flow.window_start = now
            flow.window_bytes = 0
        flow.window_bytes += segment.payload_len
        return None

    # ------------------------------------------------------------------
    # Egress: decouple piggybacked ACKs (YOUNG) / thin DUPACKs (MATURE).
    # ------------------------------------------------------------------
    def _egress(self, packet: Packet) -> Optional[List[Packet]]:
        segment = packet.payload
        if not isinstance(segment, TCPSegment):
            return None
        if not segment.has(ACK) or segment.ack is None or segment.has(SYN) or segment.has(RST):
            return None
        key = (segment.src_port, packet.dst, segment.dst_port)
        flow = self._flows.get(key)
        if flow is None:
            flow = _FlowState(window_start=self.sim.now)
            self._flows[key] = flow

        if segment.payload_len > 0:
            # Piggybacked ACK on a data packet.
            if flow.status == YOUNG and segment.ack > flow.last_egress_ack:
                flow.last_egress_ack = segment.ack
                self.acks_decoupled += 1
                if self.sim.trace.enabled:
                    self.sim.trace.event(
                        "wp2p", "am_decouple", host=self.host.name,
                        ack=segment.ack, total=self.acks_decoupled,
                    )
                pure = TCPSegment(
                    segment.src_port, segment.dst_port, segment.seq,
                    segment.ack, ACK, 0, (), segment.rwnd,
                )
                extra = Packet(packet.src, packet.dst, pure, created_at=self.sim.now)
                return [extra, packet]
            flow.last_egress_ack = max(flow.last_egress_ack, segment.ack)
            return None

        # Pure ACK path: detect DUPACKs (same cumulative ack repeated).
        if segment.is_pure_ack:
            if flow.last_pure_ack is not None and segment.ack == flow.last_pure_ack:
                self.dupacks_seen += 1
                if flow.status == MATURE:
                    flow.dupack_count += 1
                    if flow.dupack_count % self.dupack_modulus == 0:
                        self.dupacks_dropped += 1
                        if self.sim.trace.enabled:
                            self.sim.trace.event(
                                "wp2p", "am_drop_dupack", host=self.host.name,
                                ack=segment.ack, total=self.dupacks_dropped,
                            )
                        return []
            else:
                flow.dupack_count = 0
            flow.last_pure_ack = segment.ack
            flow.last_egress_ack = max(flow.last_egress_ack, segment.ack)
        return None
