"""Incentive-Aware operations (IA) — wP2P §4.2.

Two techniques:

* **LIHD** (Linear Increase, History-based Decrease) upload-rate control.
  On a shared wireless channel uploads steal airtime from downloads
  (Figure 3(b)), so the optimal upload rate is the *smallest* one that
  still earns full tit-for-tat credit.  LIHD climbs toward it linearly
  (+α per window while downloads keep improving) and backs off with
  increasing aggression (−β·k after k consecutive non-improving windows).
  The paper's pseudo-code (Figure 6) is implemented verbatim.

* **Identity retention**: keep the same peer ID across task re-initiations
  within a swarm, so tit-for-tat credit accumulated at remote peers
  survives a handoff.  Realized as part of the wP2P IP-change policy in
  :mod:`repro.wp2p.client`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from ..sim import PeriodicTask, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from ..bittorrent.client import BitTorrentClient


class LIHDController:
    """Adaptive upload-rate control for a client on a shared channel.

    Parameters (paper names in parentheses):

    u_max (``Umax``)
        Hard upload ceiling in bytes/second.
    alpha / beta (``α`` / ``β``)
        Linear increment and base decrement, bytes/second per window.
    interval
        Measurement window length; download rates are window-averaged.
    u_floor
        Lower clamp — shutting uploads off entirely just triggers
        tit-for-tat punishment (§3.3), so LIHD never goes below this.
    rate_source
        Callable returning the downstream rate LIHD optimises, bytes/s.
        Defaults to the client's own P2P download rate.  Passing another
        application's rate turns this into the paper's deferred
        **seed-LIHD** (§4.2: "LIHD can also be used for controlling the
        rate of uploads when the mobile peer becomes a seed, such that the
        uploads do not impact ... other non-P2P applications") — see
        :func:`seed_lihd`.
    """

    def __init__(
        self,
        client: "BitTorrentClient",
        u_max: float,
        alpha: float = 10_240.0,
        beta: float = 10_240.0,
        interval: float = 5.0,
        u_floor: float = 2_048.0,
        rate_source: Optional[Callable[[], float]] = None,
    ) -> None:
        if u_max <= 0:
            raise ValueError("u_max must be positive")
        if alpha <= 0 or beta <= 0:
            raise ValueError("alpha and beta must be positive")
        if not 0 <= u_floor <= u_max:
            raise ValueError("need 0 <= u_floor <= u_max")
        self.client = client
        self.sim: Simulator = client.sim
        self.u_max = u_max
        self.alpha = alpha
        self.beta = beta
        self.u_floor = u_floor
        # Initialization per Figure 6: Ucur = 0.5 * Umax — but never below
        # the floor; with e.g. u_max=3000 the raw 0.5 * Umax would start
        # the controller outside its own [u_floor, u_max] operating band.
        self.u_cur = min(u_max, max(u_floor, 0.5 * u_max))
        self._d_prev = 0.0
        self._dec_count = 0
        self._downloaded_at_window_start = 0.0
        self._rate_source = rate_source
        self._task = PeriodicTask(client.sim, interval, self._update)
        self.history: List[Tuple[float, float, float]] = []  # (t, U, D)
        self.running = False
        audit = client.sim.audit
        if audit is not None:
            audit.register_lihd(self)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._downloaded_at_window_start = self.client.downloaded.total
        self.client.set_upload_limit(self.u_cur)
        self._task.start()

    def _measure_rate(self) -> float:
        """Downstream rate over the last window, bytes/second."""
        if self._rate_source is not None:
            return self._rate_source()
        total = self.client.downloaded.total
        rate = (total - self._downloaded_at_window_start) / self._task.interval
        self._downloaded_at_window_start = total
        return rate

    def stop(self) -> None:
        self.running = False
        self._task.stop()

    # ------------------------------------------------------------------
    def _update(self) -> None:
        """One LIHD window: compare download rates, adjust the upload cap."""
        d_cur = self._measure_rate()

        decision = "hold"
        if self._d_prev != 0:
            if self._d_prev < d_cur:
                self.u_cur += self.alpha
                self._dec_count = 0
                decision = "increase"
            else:
                self._dec_count += 1
                self.u_cur -= self.beta * self._dec_count
                decision = "decrease"
        self.u_cur = min(self.u_max, max(self.u_floor, self.u_cur))
        self._d_prev = d_cur
        self.client.set_upload_limit(self.u_cur)
        self.history.append((self.sim.now, self.u_cur, d_cur))
        if self.sim.trace.enabled:
            self.sim.trace.event(
                "wp2p", "lihd_update", client=self.client.name,
                decision=decision, upload_cap=self.u_cur,
                download_rate=d_cur, dec_count=self._dec_count,
            )

    @property
    def upload_rate(self) -> float:
        return self.u_cur


def seed_lihd(
    client: "BitTorrentClient",
    foreground_rate: Callable[[], float],
    u_max: float,
    alpha: float = 10_240.0,
    beta: float = 10_240.0,
    interval: float = 5.0,
    u_floor: float = 2_048.0,
) -> LIHDController:
    """LIHD for a *seeding* mobile peer (the paper's §4.2 future work).

    A seed earns nothing from tit-for-tat, but its uploads still steal
    shared-channel airtime from every other application on the mobile host.
    This controller adapts the seed's upload cap to maximise a foreground
    application's download rate (e.g. a
    :class:`~repro.apps.bulk.ForegroundDownload`), keeping the peer a
    useful seed without degrading the user's own traffic.
    """
    return LIHDController(
        client, u_max,
        alpha=alpha, beta=beta, interval=interval, u_floor=u_floor,
        rate_source=foreground_rate,
    )


class IdentityRetention:
    """Stores the swarm-scoped peer ID so handoffs can restore it.

    The paper: "IA component stores the peer ID of the mobile host when the
    application is started and when there is IP layer handoff, the IA
    component restores the stored peer ID to maintain incentives."  The
    retention is *per swarm* (per info-hash): incentives earned in one
    swarm never leak into another.
    """

    def __init__(self) -> None:
        self._ids: dict[str, str] = {}

    def remember(self, info_hash: str, peer_id: str) -> None:
        self._ids[info_hash] = peer_id

    def recall(self, info_hash: str) -> Optional[str]:
        return self._ids.get(info_hash)

    def forget(self, info_hash: str) -> None:
        self._ids.pop(info_hash, None)
