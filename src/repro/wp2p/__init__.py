"""wP2P: the paper's mobile-host client (AM + IA + MA components)."""

from .age_manipulation import (
    DEFAULT_GAMMA_BYTES,
    MATURE,
    YOUNG,
    AgeBasedManipulation,
)
from .client import WP2PClient, WP2PConfig, wp2p_ip_change_policy
from .incentive_aware import IdentityRetention, LIHDController, seed_lihd
from .mobility_aware import (
    MobilityAwareSelector,
    exponential_progress_schedule,
    linear_progress_schedule,
    stability_schedule,
)

__all__ = [
    "AgeBasedManipulation",
    "DEFAULT_GAMMA_BYTES",
    "YOUNG",
    "MATURE",
    "WP2PClient",
    "WP2PConfig",
    "wp2p_ip_change_policy",
    "IdentityRetention",
    "LIHDController",
    "seed_lihd",
    "MobilityAwareSelector",
    "linear_progress_schedule",
    "exponential_progress_schedule",
    "stability_schedule",
]
