"""repro.strategy — pluggable client strategies and strategy mixes.

The incentive layer made first-class: a
:class:`~repro.strategy.base.ClientStrategy` bundles a
:class:`~repro.strategy.base.ChokerPolicy` (the ranking/slot-allocation
half of choking — round scheduling stays in the shared
:class:`~repro.bittorrent.choker.ChokerDriver`), an optional piece
selector and client behaviour overrides under one registry-resolved
name.  Built-ins: ``reference`` (tit-for-tat), ``freerider``,
``tyrant`` (BitTyrant-style) and ``propshare`` (Nielson et al.'s
robust proportional-share choker).

Strategies reach a swarm three ways, mirroring :mod:`repro.chaos`:

Explicitly, per peer::

    swarm.add_wired_peer("leech0", strategy="tyrant")

As a scenario-level mix (name → fraction, optionally per population)::

    swarm = SwarmScenario(seed=7, strategy_mix={"freerider": 0.25})

Globally, for code that builds scenarios internally — the pattern the
CLI's ``--strategy``/``--strategy-mix`` flags and the
:class:`~repro.runner.Runner` use::

    from repro import strategy

    strategy.install_mix({"mobile": {"freerider": 0.5}})
    try:
        run_scenario(...)    # every new SwarmScenario draws from the mix
    finally:
        strategy.uninstall_mix()

or equivalently ``with strategy.strategic({...}): ...``.  Strategy
assignment is deterministic (no RNG), off by default, and costs one
``is None`` check per scenario when off.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .base import ChokerPolicy, ClientStrategy
from .mix import (
    DEFAULT_STRATEGY,
    POPULATIONS,
    Mix,
    MixAssigner,
    allocate_counts,
    mix_is_default,
    normalize_mix,
)
from .policies import (
    FreeriderPolicy,
    PropSharePolicy,
    ReferencePolicy,
    TyrantPolicy,
    contribution_rate,
)
from .registry import (
    UnknownStrategyError,
    get_strategy,
    register_strategy,
    resolve_strategy,
    strategy_names,
)

__all__ = [
    "ChokerPolicy",
    "ClientStrategy",
    "DEFAULT_STRATEGY",
    "FreeriderPolicy",
    "Mix",
    "MixAssigner",
    "POPULATIONS",
    "PropSharePolicy",
    "ReferencePolicy",
    "TyrantPolicy",
    "UnknownStrategyError",
    "allocate_counts",
    "ambient_mix",
    "contribution_rate",
    "get_strategy",
    "install_mix",
    "mix_installed",
    "mix_is_default",
    "normalize_mix",
    "register_strategy",
    "resolve_strategy",
    "strategic",
    "strategy_names",
    "uninstall_mix",
]


# ----------------------------------------------------------------------
# Global default mix: every new SwarmScenario consults it, like chaos.
# ----------------------------------------------------------------------
_ambient_mix: Optional[Mix] = None


def install_mix(mix) -> None:
    """Assign the mix inside every *new* scenario until :func:`uninstall_mix`.

    The mix is validated (and canonicalised) eagerly, so an unknown
    strategy name or bad fraction fails at install time, not mid-run.
    Installing an effectively-default mix (pure ``reference``) is a
    no-op: scenarios see no mix at all, keeping the default simulation
    trajectory byte-identical.
    """
    global _ambient_mix
    normalized = normalize_mix(mix)
    _ambient_mix = None if mix_is_default(normalized) else normalized


def uninstall_mix() -> None:
    """Stop assigning strategies to new scenarios."""
    global _ambient_mix
    _ambient_mix = None


def mix_installed() -> bool:
    """True when new scenarios get a strategy mix."""
    return _ambient_mix is not None


def ambient_mix() -> Optional[Mix]:
    """The installed canonical mix, or ``None``."""
    if _ambient_mix is None:
        return None
    return {pop: dict(weights) for pop, weights in _ambient_mix.items()}


@contextmanager
def strategic(mix) -> Iterator[Optional[Mix]]:
    """Install a mix for the scenarios created inside the block."""
    install_mix(mix)
    try:
        yield ambient_mix()
    finally:
        uninstall_mix()
