"""Strategy mixes: name→fraction compositions over peer populations.

A *mix* says which fraction of a swarm runs which
:class:`~repro.strategy.base.ClientStrategy`, optionally split by
population — ``"wired"``, ``"mobile"`` or ``"all"``.  Two input
shapes are accepted and canonicalised by :func:`normalize_mix`::

    {"freerider": 0.25}                          # implied population: all
    {"mobile": {"freerider": 0.5}, "wired": {}}  # explicit populations

Fractions within a population may sum to less than 1; the remainder
implicitly runs ``reference``.  The canonical form is pure JSON data
(population → name → float), so a mix folds directly into
:meth:`~repro.runner.spec.ScenarioSpec.spec_hash` and ships to pool
workers unchanged.

Peer-to-strategy assignment (:class:`MixAssigner`) is deterministic —
a largest-deficit quota walk, no RNG — so installing an all-``reference``
mix (or none) leaves the simulation trajectory byte-identical to a run
from before this layer existed.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Union

from .registry import get_strategy

#: Populations a mix may address.  ``"all"`` is the fallback for any
#: population without its own entry.
POPULATIONS = ("all", "wired", "mobile")

#: The strategy a population's unassigned remainder runs.
DEFAULT_STRATEGY = "reference"

MixInput = Mapping[str, Union[float, int, Mapping[str, Union[float, int]]]]
Mix = Dict[str, Dict[str, float]]

_EPS = 1e-9


def _normalize_weights(weights: Mapping[str, object], where: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    total = 0.0
    for name in sorted(weights):
        raw = weights[name]
        if not isinstance(raw, (int, float)) or isinstance(raw, bool):
            raise ValueError(
                f"strategy fraction for {name!r} {where} must be a number, "
                f"got {raw!r}"
            )
        fraction = float(raw)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(
                f"strategy fraction for {name!r} {where} must be in [0, 1], "
                f"got {fraction!r}"
            )
        get_strategy(name)  # unknown names fail eagerly
        total += fraction
        if fraction > 0.0:
            out[name] = fraction
    if total > 1.0 + _EPS:
        raise ValueError(
            f"strategy fractions {where} sum to {total:g} > 1"
        )
    return out


def normalize_mix(mix: Optional[MixInput]) -> Mix:
    """Canonicalise either accepted input shape; validate names/fractions."""
    if not mix:
        return {}
    keys = list(mix)
    population_form = any(k in POPULATIONS for k in keys)
    if population_form:
        stray = [k for k in keys if k not in POPULATIONS]
        if stray:
            raise ValueError(
                "strategy mix mingles population keys with strategy keys: "
                f"{stray!r} (populations are {', '.join(POPULATIONS)})"
            )
        out: Mix = {}
        for population in sorted(keys):
            weights = mix[population]
            if not isinstance(weights, Mapping):
                raise ValueError(
                    f"population {population!r} must map strategy names to "
                    f"fractions, got {weights!r}"
                )
            normalized = _normalize_weights(weights, f"in population {population!r}")
            if normalized:
                out[population] = normalized
        return out
    flat = _normalize_weights(mix, "in the mix")
    return {"all": flat} if flat else {}


def mix_is_default(mix: Mix) -> bool:
    """True when every population effectively runs pure ``reference``."""
    return all(
        set(weights) <= {DEFAULT_STRATEGY} for weights in mix.values()
    )


class MixAssigner:
    """Deterministic peer-by-peer strategy assignment for one scenario.

    Largest-deficit quota walk per population: the *k*-th peer gets the
    strategy whose ideal share of ``k+1`` peers most exceeds what it
    has been assigned so far (ties break to the lexicographically first
    name).  Exact, order-stable, and RNG-free — the same swarm built
    twice assigns identically, and a scenario's seeded streams are
    never consumed by strategy assignment.
    """

    def __init__(self, mix: Optional[MixInput]) -> None:
        self.mix: Mix = normalize_mix(mix)
        self._assigned: Dict[str, Dict[str, int]] = {}
        self._totals: Dict[str, int] = {}

    def weights_for(self, population: str) -> Dict[str, float]:
        """Effective weights (remainder folded into ``reference``)."""
        key = self._resolve(population)
        weights = dict(self.mix.get(key, {}))
        explicit = sum(weights.values())
        if explicit < 1.0 - _EPS:
            weights[DEFAULT_STRATEGY] = (
                weights.get(DEFAULT_STRATEGY, 0.0) + (1.0 - explicit)
            )
        return weights

    def _resolve(self, population: str) -> str:
        if population not in POPULATIONS:
            raise ValueError(
                f"unknown population {population!r}; "
                f"choose from {', '.join(POPULATIONS)}"
            )
        return population if population in self.mix else "all"

    def assign(self, population: str) -> str:
        """The strategy name for the next peer of ``population``."""
        key = self._resolve(population)
        weights = self.weights_for(population)
        assigned = self._assigned.setdefault(key, {})
        k = self._totals.get(key, 0)
        best = DEFAULT_STRATEGY
        best_deficit = float("-inf")
        for name in sorted(weights):
            deficit = weights[name] * (k + 1) - assigned.get(name, 0)
            if deficit > best_deficit + _EPS:
                best, best_deficit = name, deficit
        self._totals[key] = k + 1
        assigned[best] = assigned.get(best, 0) + 1
        return best


def allocate_counts(
    weights: Mapping[str, float], count: int, population: str = "all"
) -> Dict[str, int]:
    """How many of ``count`` peers each strategy gets under ``weights``.

    Exactly the counts a :class:`MixAssigner` would produce over
    ``count`` consecutive assignments (it is implemented as one), so
    explicit-assignment experiments and ambient swarm construction can
    never disagree.
    """
    assigner = MixAssigner({population: dict(weights)})
    out: Dict[str, int] = {}
    for _ in range(count):
        name = assigner.assign(population)
        out[name] = out.get(name, 0) + 1
    return out
