"""The client-strategy seam: choking policies and strategy bundles.

A :class:`ChokerPolicy` owns *what* the choker decides each round —
how interested peers are ranked and which of them get the ranked
unchoke slots — while the shared driver
(:class:`~repro.bittorrent.choker.ChokerDriver`) owns *when*: round
scheduling, the anti-snubbing filter, the optimistic-unchoke rotation
and applying the choke/unchoke edge to each connection.  The split
mirrors :class:`~repro.bittorrent.selection.PieceSelector` on the
download side.

A :class:`ClientStrategy` bundles one choking policy with an optional
piece-selector name and client-config behaviour overrides into a
named, registry-resolved unit — ``reference``, ``freerider``,
``tyrant``, ``propshare`` — so an entire client personality travels as
one string through specs, CLIs and caches.

This package never imports :mod:`repro.bittorrent` at runtime (only
under ``TYPE_CHECKING``), so the bittorrent layer can depend on it
without a cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Optional, Sequence, Set

if TYPE_CHECKING:  # pragma: no cover
    from ..bittorrent.client import BitTorrentClient
    from ..bittorrent.peer import PeerConnection


class ChokerPolicy:
    """Ranking + slot allocation for one client's choke rounds.

    Stateful per client: the driver constructs one policy instance per
    client (via :attr:`ClientStrategy.policy_factory`), so estimator
    policies such as :class:`~repro.strategy.policies.TyrantPolicy` may
    keep per-peer history on ``self``.
    """

    #: registry-facing policy name (matches the owning strategy's name)
    name = "base"

    #: whether the driver runs the optimistic-unchoke rotation for this
    #: policy (BitTyrant-style clients famously drop it)
    uses_optimistic = True

    def rank(self, client: "BitTorrentClient", peer: "PeerConnection") -> float:
        """The ranking key for one interested peer (higher is better)."""
        raise NotImplementedError

    def allocate(
        self,
        client: "BitTorrentClient",
        candidates: Sequence["PeerConnection"],
        slots: int,
        rng: random.Random,
    ) -> Set["PeerConnection"]:
        """Pick which candidates win the ranked unchoke slots.

        The default is the classic top-``slots`` by :meth:`rank`
        (stable sort, so equal-ranked peers keep candidate order).
        ``rng`` is the client's seeded choker stream; the reference
        policy never draws from it here, so the default simulation
        trajectory is untouched by this seam existing.
        """
        ranked = sorted(
            candidates, key=lambda p: self.rank(client, p), reverse=True
        )
        return set(ranked[:slots])


@dataclass(frozen=True)
class ClientStrategy:
    """A named bundle of (choker policy, selector, behaviour overrides).

    ``policy_factory`` builds a fresh :class:`ChokerPolicy` per client.
    ``selector`` optionally names a registered piece selector (see
    :func:`repro.bittorrent.selection.make_selector`); ``None`` keeps
    the client's default.  ``config_overrides`` are applied to a *copy*
    of the client's :class:`~repro.bittorrent.client.ClientConfig`
    (``dataclasses.replace``), never mutating a shared config object.
    """

    name: str
    policy_factory: Callable[[], ChokerPolicy]
    description: str = ""
    selector: Optional[str] = None
    config_overrides: Mapping[str, object] = field(default_factory=dict)

    def make_policy(self) -> ChokerPolicy:
        """A fresh policy instance for one client."""
        return self.policy_factory()
