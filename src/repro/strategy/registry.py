"""The strategy registry: named, resolvable client personalities."""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .base import ClientStrategy
from .policies import (
    FreeriderPolicy,
    PropSharePolicy,
    ReferencePolicy,
    TyrantPolicy,
)


class UnknownStrategyError(KeyError):
    """Raised when a strategy name is not registered."""


_STRATEGIES: Dict[str, ClientStrategy] = {}


def register_strategy(strategy: ClientStrategy) -> ClientStrategy:
    """Register (or replace) a strategy under its name."""
    _STRATEGIES[strategy.name] = strategy
    return strategy


def get_strategy(name: str) -> ClientStrategy:
    """The registered strategy, or :class:`UnknownStrategyError`."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        known = ", ".join(strategy_names())
        raise UnknownStrategyError(
            f"unknown strategy {name!r}; choose from {known}"
        ) from None


def strategy_names() -> List[str]:
    """Registered strategy names, sorted."""
    return sorted(_STRATEGIES)


def resolve_strategy(
    strategy: Optional[Union[str, ClientStrategy]]
) -> Optional[ClientStrategy]:
    """``None`` passes through; a name resolves through the registry."""
    if strategy is None or isinstance(strategy, ClientStrategy):
        return strategy
    return get_strategy(strategy)


register_strategy(ClientStrategy(
    name="reference",
    policy_factory=ReferencePolicy,
    description="standard tit-for-tat choking (the paper's baseline client)",
))

register_strategy(ClientStrategy(
    name="freerider",
    policy_factory=FreeriderPolicy,
    description="downloads but never uploads: zero unchoke slots, "
                "hit-and-run exit on completion",
    config_overrides={"unchoke_slots": 0, "keep_seeding": False},
))

register_strategy(ClientStrategy(
    name="tyrant",
    policy_factory=TyrantPolicy,
    description="BitTyrant-style exploiter: reciprocation-cost estimator, "
                "unchokes the cheapest sufficient peers, no optimistic slot",
))

register_strategy(ClientStrategy(
    name="propshare",
    policy_factory=PropSharePolicy,
    description="proportional-share robust choker (Nielson et al.): ranked "
                "slots drawn proportionally to contribution",
))
