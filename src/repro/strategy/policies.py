"""Built-in choking policies.

* :class:`ReferencePolicy` — the paper's tit-for-tat baseline (§2.2),
  byte-for-byte the ranking the pre-seam ``TitForTatChoker`` used.
* :class:`FreeriderPolicy` — contributes nothing: zero ranked slots
  (its strategy also pins ``unchoke_slots=0`` and hit-and-run
  ``keep_seeding=False``), yet keeps downloading whatever optimistic
  slots and seeds will give it.
* :class:`TyrantPolicy` — a BitTyrant-style exploiter (Piatek et al.):
  estimates the upload "cost" of keeping each peer reciprocating and
  unchokes the peers with the best value-per-cost, skipping the
  optimistic rotation entirely.
* :class:`PropSharePolicy` — the proportional-share robust choker of
  Nielson et al. (arXiv:1108.2716): ranked slots are drawn
  proportionally to each peer's contribution, so service scales with
  what a peer actually gives and threshold-gaming the top-N cutoff
  stops paying.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Sequence, Set

from .base import ChokerPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..bittorrent.client import BitTorrentClient
    from ..bittorrent.peer import PeerConnection


def contribution_rate(
    client: "BitTorrentClient", peer: "PeerConnection"
) -> float:
    """What ``peer`` is worth to ``client`` right now.

    While leeching: live download rate plus the decayed
    :class:`~repro.bittorrent.ledger.PeerLedger` credit for the peer's
    ID — which is what makes wP2P identity retention compose with every
    policy here (a retained ID keeps its credit across handoffs, a
    fresh one ranks zero).  While seeding: upload rate to the peer.
    """
    if client.manager.complete:
        return peer.upload_meter.rate()
    live = peer.download_meter.rate()
    credit = client.ledger.rate(peer.peer_id) if peer.peer_id else 0.0
    return live + credit


class ReferencePolicy(ChokerPolicy):
    """Standard tit-for-tat: top-N by contribution, optimistic slot on."""

    name = "reference"
    uses_optimistic = True

    def rank(self, client, peer):
        return contribution_rate(client, peer)


class FreeriderPolicy(ChokerPolicy):
    """Never unchokes anyone; no optimistic slot to give away either."""

    name = "freerider"
    uses_optimistic = False

    def rank(self, client, peer):
        return 0.0

    def allocate(self, client, candidates, slots, rng):
        return set()


class TyrantPolicy(ChokerPolicy):
    """BitTyrant-style reciprocation estimator.

    Keeps a per-peer-ID estimate of the upload rate needed to stay
    reciprocated and ranks peers by contribution per unit cost, so the
    slots go to the *cheapest sufficient* peers.  After each round the
    estimate adapts from what actually happened: a peer we unchoked
    that reciprocated was overpaid (probe cheaper, ``decrease``); one
    that took our slot without reciprocating was underpaid (``increase``).
    No optimistic slot — the canonical BitTyrant free lunch.
    """

    name = "tyrant"
    uses_optimistic = False

    def __init__(
        self,
        initial_cost: float = 8_192.0,
        decrease: float = 0.9,
        increase: float = 1.25,
        cost_floor: float = 256.0,
    ) -> None:
        self.initial_cost = initial_cost
        self.decrease = decrease
        self.increase = increase
        self.cost_floor = cost_floor
        self.cost: Dict[str, float] = {}
        self._unchoked_last: Set[str] = set()

    def rank(self, client, peer):
        value = contribution_rate(client, peer)
        cost = self.cost.get(peer.peer_id or "", self.initial_cost)
        return value / cost

    def allocate(self, client, candidates, slots, rng):
        for peer in candidates:
            peer_id = peer.peer_id
            if peer_id is None or peer_id not in self._unchoked_last:
                continue
            cost = self.cost.get(peer_id, self.initial_cost)
            factor = self.decrease if not peer.peer_choking else self.increase
            self.cost[peer_id] = max(cost * factor, self.cost_floor)
        chosen = super().allocate(client, candidates, slots, rng)
        self._unchoked_last = {p.peer_id for p in chosen if p.peer_id}
        return chosen


class PropSharePolicy(ChokerPolicy):
    """Proportional-share robust choker (Nielson et al.).

    Each ranked slot is a weighted draw (without replacement) over the
    candidates, weight = contribution — expected service is
    proportional to what a peer gives.  Zero-contributors can never win
    a ranked slot; the optimistic rotation stays on as the sanctioned
    bootstrap path, so newcomers are served without being exploitable.
    """

    name = "propshare"
    uses_optimistic = True

    def rank(self, client, peer):
        return contribution_rate(client, peer)

    def allocate(
        self,
        client: "BitTorrentClient",
        candidates: Sequence["PeerConnection"],
        slots: int,
        rng: random.Random,
    ) -> Set["PeerConnection"]:
        pool = [p for p in candidates if self.rank(client, p) > 0.0]
        weights = [self.rank(client, p) for p in pool]
        chosen: Set["PeerConnection"] = set()
        while pool and len(chosen) < slots:
            total = sum(weights)
            draw = rng.random() * total
            acc = 0.0
            winner = len(pool) - 1  # float-sum slack lands on the last
            for i, weight in enumerate(weights):
                acc += weight
                if draw < acc:
                    winner = i
                    break
            chosen.add(pool.pop(winner))
            weights.pop(winner)
        return chosen
