"""Setup shim.

Metadata lives in pyproject.toml; this file exists so the package can be
installed in environments without the ``wheel`` package (offline CI), where
pip falls back to the legacy ``setup.py develop`` path for ``pip install -e``.
"""

from setuptools import setup

setup()
