#!/usr/bin/env python
"""Cross-validate the fluid swarm tier against the packet simulator.

Runs every matched scenario in :data:`repro.scale.validate.MATCHED_SCENARIOS`
on both backends and checks the fluid model tracks packet-level
completion time and mean goodput within the tolerance.  Exits non-zero
on any miss, so CI catches calibration drift the moment the packet
simulator's dynamics change.

Usage::

    PYTHONPATH=src python scripts/validate_scale.py
    PYTHONPATH=src python scripts/validate_scale.py --tolerance 0.10 --json
    PYTHONPATH=src python scripts/validate_scale.py --scenario mobile_wp2p
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.scale.validate import (
    DEFAULT_TOLERANCE,
    MATCHED_SCENARIOS,
    cross_validate,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fluid-vs-packet cross-validation gate")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"max relative error (default {DEFAULT_TOLERANCE:g})")
    parser.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        choices=[ms.name for ms in MATCHED_SCENARIOS],
        help="restrict to one matched scenario (repeatable; default: all)")
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=None, metavar="SEED",
        help="packet-simulator seeds to average (default: the standing set)")
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON")
    args = parser.parse_args(argv)

    scenarios = None
    if args.scenario:
        scenarios = [ms for ms in MATCHED_SCENARIOS if ms.name in args.scenario]
    kwargs = {"tolerance": args.tolerance}
    if scenarios is not None:
        kwargs["scenarios"] = scenarios
    if args.seeds is not None:
        kwargs["seeds"] = args.seeds
    report = cross_validate(**kwargs)

    if args.json:
        print(json.dumps(report.to_jsonable(), indent=2, sort_keys=True))
    else:
        print(report.table())
        print()
        print("PASSED" if report.passed else "FAILED",
              f"({len(report.rows)} comparisons, "
              f"tolerance {args.tolerance:.0%})")
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
