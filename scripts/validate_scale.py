#!/usr/bin/env python
"""Cross-validate the approximate swarm tiers against their references.

``--backend fluid`` (default) runs every matched scenario in
:data:`repro.scale.validate.MATCHED_SCENARIOS` on both backends and
checks the fluid model tracks packet-level completion time and mean
goodput within the tolerance.  ``--backend hybrid`` runs the hybrid
backend's two-sided gate instead: all-focal swarms must reproduce the
pure packet backend *exactly*, and focal hosts embedded in a 10^4-peer
background must match the pure-fluid class prediction within the same
tolerance.  Exits non-zero on any miss, so CI catches calibration
drift the moment either tier's dynamics change.

Usage::

    PYTHONPATH=src python scripts/validate_scale.py
    PYTHONPATH=src python scripts/validate_scale.py --tolerance 0.10 --json
    PYTHONPATH=src python scripts/validate_scale.py --scenario mobile_wp2p
    PYTHONPATH=src python scripts/validate_scale.py --backend hybrid
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.scale.validate import (
    DEFAULT_TOLERANCE,
    HYBRID_EMBEDDINGS,
    MATCHED_SCENARIOS,
    cross_validate,
    hybrid_cross_validate,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="approximate-tier cross-validation gate")
    parser.add_argument(
        "--backend", choices=("fluid", "hybrid"), default="fluid",
        help="which approximate tier to validate (default: fluid)")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"max relative error (default {DEFAULT_TOLERANCE:g})")
    parser.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        choices=([ms.name for ms in MATCHED_SCENARIOS]
                 + [emb.name for emb in HYBRID_EMBEDDINGS]),
        help="restrict to one scenario (repeatable; default: all)")
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=None, metavar="SEED",
        help="packet-simulator seeds to average (default: the standing set)")
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON")
    args = parser.parse_args(argv)

    kwargs = {"tolerance": args.tolerance}
    if args.seeds is not None:
        kwargs["seeds"] = args.seeds
    if args.backend == "hybrid":
        if args.scenario:
            kwargs["equivalence"] = [
                ms for ms in MATCHED_SCENARIOS if ms.name in args.scenario
            ]
            kwargs["embeddings"] = [
                emb for emb in HYBRID_EMBEDDINGS if emb.name in args.scenario
            ]
        report = hybrid_cross_validate(**kwargs)
        labels = ("reference", "hybrid")
    else:
        if args.scenario:
            kwargs["scenarios"] = [
                ms for ms in MATCHED_SCENARIOS if ms.name in args.scenario
            ]
        report = cross_validate(**kwargs)
        labels = ("packet", "fluid")

    if args.json:
        print(json.dumps(report.to_jsonable(), indent=2, sort_keys=True))
    else:
        print(report.table(labels=labels))
        print()
        print("PASSED" if report.passed else "FAILED",
              f"({len(report.rows)} comparisons, "
              f"tolerance {args.tolerance:.0%})")
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
