#!/usr/bin/env python
"""Execute the ``benchmarks/`` suite and consolidate ``BENCH_scale.json``.

Drives pytest-benchmark over the benchmark suite (every figure
reproduction plus the fluid-tier benches) and distils its verbose JSON
into one small report at the repo root: per-benchmark wall-clock,
events per second (simulation events for packet figures, integration
steps for fluid ones — whatever the bench attached as ``events``), and
the peak swarm size exercised.

Usage::

    PYTHONPATH=src python scripts/run_benchmarks.py                 # full suite
    PYTHONPATH=src python scripts/run_benchmarks.py -k scale        # fluid tier only
    PYTHONPATH=src python scripts/run_benchmarks.py --jobs 4 -o /tmp/bench.json

The consolidated format is stable (sorted keys, one entry per bench),
so CI can archive ``BENCH_scale.json`` as an artifact and runs stay
diffable across commits.  Each run also appends one timestamped line
(commit, wall clock, per-bench events/sec) to the committed
``benchmarks/TRAJECTORY.jsonl``, the repo's long-term perf history;
``--no-trajectory`` skips the append for scratch runs.

Regression gating (``--check-regression``) applies two checks:

* the implementation pair: the default calendar event queue must not
  fall more than ``--threshold`` (default 30%) behind the heap fallback
  on the end-to-end packet bench — a machine-independent guard, safe
  for CI runners of unknown speed;
* optionally, ``--baseline PATH`` (e.g. the committed
  ``benchmarks/BASELINE.json``) compares events-per-second per bench
  against recorded numbers — meaningful on the machine that recorded
  them, so it is opt-in rather than part of ``--check-regression``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from datetime import datetime, timezone

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "benchmarks", "TRAJECTORY.jsonl")


def consolidate(raw: dict) -> dict:
    """Distil a pytest-benchmark JSON blob into the BENCH_scale schema."""
    entries = []
    for bench in raw.get("benchmarks", []):
        wall = bench["stats"]["mean"]
        extra = bench.get("extra_info", {}) or {}
        events = extra.get("events")
        entries.append({
            "name": bench["name"],
            "group": bench.get("group"),
            "wall_seconds": wall,
            "events": events,
            "events_per_sec": (events / wall) if events and wall > 0 else None,
            "peak_swarm": extra.get("peak_swarm"),
            "figure": extra.get("figure"),
        })
    entries.sort(key=lambda e: e["name"])
    return {
        "machine_info": {
            k: raw.get("machine_info", {}).get(k)
            for k in ("python_version", "cpu", "system")
        },
        "benchmarks": entries,
        "total_wall_seconds": sum(e["wall_seconds"] for e in entries),
        "peak_swarm_size": max(
            (e["peak_swarm"] for e in entries if e["peak_swarm"]), default=0,
        ),
    }


def trajectory_record(report: dict) -> dict:
    """One compact JSONL line: when, what code, how fast.

    Appended to ``benchmarks/TRAJECTORY.jsonl`` after every suite run, so
    the committed file accumulates the perf history of the repo — one
    line per run, grep-able and plottable without pytest-benchmark's
    storage machinery.
    """
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        commit = None
    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "commit": commit,
        "total_wall_seconds": round(report["total_wall_seconds"], 3),
        "peak_swarm_size": report["peak_swarm_size"],
        "events_per_sec": {
            e["name"]: round(e["events_per_sec"])
            for e in report["benchmarks"] if e["events_per_sec"]
        },
    }


def append_trajectory(report: dict, path: str) -> dict:
    record = trajectory_record(report)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def check_regression(report: dict, threshold: float, baseline: dict | None) -> list:
    """Return a list of human-readable regression failures (empty = pass)."""
    failures = []
    by_name = {e["name"]: e for e in report["benchmarks"]}

    def eps(entry):
        return entry.get("events_per_sec") or 0.0

    # Machine-independent pair check: the default queue implementation
    # must stay within `threshold` of the heap fallback end to end.
    calendar = by_name.get("test_packet_engine_e2e[calendar]")
    heap = by_name.get("test_packet_engine_e2e[heap]")
    if calendar and heap and eps(heap) > 0:
        floor = (1.0 - threshold) * eps(heap)
        if eps(calendar) < floor:
            failures.append(
                f"calendar queue {eps(calendar):,.0f} ev/s fell more than "
                f"{threshold:.0%} behind heap fallback {eps(heap):,.0f} ev/s"
            )

    # Optional trajectory check against recorded numbers.
    if baseline:
        for ref in baseline.get("benchmarks", []):
            current = by_name.get(ref["name"])
            ref_eps = ref.get("events_per_sec")
            if current is None or not ref_eps:
                continue
            floor = (1.0 - threshold) * ref_eps
            if eps(current) < floor:
                failures.append(
                    f"{ref['name']}: {eps(current):,.0f} ev/s is >"
                    f"{threshold:.0%} below recorded baseline {ref_eps:,.0f} ev/s"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="run the benchmark suite, consolidate BENCH_scale.json")
    parser.add_argument("-k", dest="select", default=None,
                        help="pytest -k expression to select benchmarks")
    parser.add_argument("-o", "--output",
                        default=os.path.join(REPO_ROOT, "BENCH_scale.json"),
                        help="consolidated report path (default: repo root)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="REPRO_BENCH_JOBS for the figure campaigns")
    parser.add_argument("--check-regression", action="store_true",
                        help="fail if the calendar queue regresses vs the "
                             "heap fallback (and vs --baseline, if given)")
    parser.add_argument("--baseline", default=None,
                        help="recorded BENCH_scale-format JSON to compare "
                             "events/sec against (e.g. benchmarks/BASELINE.json)")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed events/sec regression fraction (default 0.30)")
    parser.add_argument("--trajectory", default=TRAJECTORY_PATH,
                        help="JSONL perf-history file to append a timestamped "
                             "record to (default: benchmarks/TRAJECTORY.jsonl)")
    parser.add_argument("--no-trajectory", action="store_true",
                        help="skip the trajectory append (scratch runs)")
    parser.add_argument("--pytest-args", nargs=argparse.REMAINDER, default=[],
                        help="extra args passed through to pytest")
    args = parser.parse_args(argv)

    env = dict(os.environ)
    env["REPRO_BENCH_JOBS"] = str(args.jobs)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH")) if p
    )

    with tempfile.TemporaryDirectory() as tmp:
        raw_path = os.path.join(tmp, "bench.json")
        cmd = [
            sys.executable, "-m", "pytest",
            os.path.join(REPO_ROOT, "benchmarks"),
            "-q", "--benchmark-disable-gc",
            f"--benchmark-json={raw_path}",
        ]
        if args.select:
            cmd += ["-k", args.select]
        cmd += args.pytest_args
        proc = subprocess.run(cmd, env=env, cwd=REPO_ROOT)
        if proc.returncode != 0:
            print("benchmark suite failed; no report written", file=sys.stderr)
            return proc.returncode
        with open(raw_path) as handle:
            raw = json.load(handle)

    report = consolidate(raw)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"\nwrote {args.output}")
    if not args.no_trajectory:
        record = append_trajectory(report, args.trajectory)
        print(f"appended {record['timestamp']} ({record['commit'] or 'no commit'})"
              f" to {args.trajectory}")
    for entry in report["benchmarks"]:
        eps = entry["events_per_sec"]
        print(f"  {entry['name']:<42} {entry['wall_seconds']*1000:>9.1f} ms"
              + (f"  {eps:>12,.0f} ev/s" if eps else "")
              + (f"  peak {entry['peak_swarm']:>9,.0f}"
                 if entry["peak_swarm"] else ""))

    if args.check_regression or args.baseline:
        baseline = None
        if args.baseline:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        failures = check_regression(report, args.threshold, baseline)
        if failures:
            print("\nperformance regression detected:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print("\nregression check passed"
              + (f" (vs {args.baseline})" if args.baseline else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
