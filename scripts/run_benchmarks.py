#!/usr/bin/env python
"""Execute the ``benchmarks/`` suite and consolidate ``BENCH_scale.json``.

Drives pytest-benchmark over the benchmark suite (every figure
reproduction plus the fluid-tier benches) and distils its verbose JSON
into one small report at the repo root: per-benchmark wall-clock,
events per second (simulation events for packet figures, integration
steps for fluid ones — whatever the bench attached as ``events``), and
the peak swarm size exercised.

Usage::

    PYTHONPATH=src python scripts/run_benchmarks.py                 # full suite
    PYTHONPATH=src python scripts/run_benchmarks.py -k scale        # fluid tier only
    PYTHONPATH=src python scripts/run_benchmarks.py --jobs 4 -o /tmp/bench.json

The consolidated format is stable (sorted keys, one entry per bench),
so CI can archive ``BENCH_scale.json`` as an artifact and runs stay
diffable across commits.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def consolidate(raw: dict) -> dict:
    """Distil a pytest-benchmark JSON blob into the BENCH_scale schema."""
    entries = []
    for bench in raw.get("benchmarks", []):
        wall = bench["stats"]["mean"]
        extra = bench.get("extra_info", {}) or {}
        events = extra.get("events")
        entries.append({
            "name": bench["name"],
            "group": bench.get("group"),
            "wall_seconds": wall,
            "events": events,
            "events_per_sec": (events / wall) if events and wall > 0 else None,
            "peak_swarm": extra.get("peak_swarm"),
            "figure": extra.get("figure"),
        })
    entries.sort(key=lambda e: e["name"])
    return {
        "machine_info": {
            k: raw.get("machine_info", {}).get(k)
            for k in ("python_version", "cpu", "system")
        },
        "benchmarks": entries,
        "total_wall_seconds": sum(e["wall_seconds"] for e in entries),
        "peak_swarm_size": max(
            (e["peak_swarm"] for e in entries if e["peak_swarm"]), default=0,
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="run the benchmark suite, consolidate BENCH_scale.json")
    parser.add_argument("-k", dest="select", default=None,
                        help="pytest -k expression to select benchmarks")
    parser.add_argument("-o", "--output",
                        default=os.path.join(REPO_ROOT, "BENCH_scale.json"),
                        help="consolidated report path (default: repo root)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="REPRO_BENCH_JOBS for the figure campaigns")
    parser.add_argument("--pytest-args", nargs=argparse.REMAINDER, default=[],
                        help="extra args passed through to pytest")
    args = parser.parse_args(argv)

    env = dict(os.environ)
    env["REPRO_BENCH_JOBS"] = str(args.jobs)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH")) if p
    )

    with tempfile.TemporaryDirectory() as tmp:
        raw_path = os.path.join(tmp, "bench.json")
        cmd = [
            sys.executable, "-m", "pytest",
            os.path.join(REPO_ROOT, "benchmarks"),
            "-q", "--benchmark-disable-gc",
            f"--benchmark-json={raw_path}",
        ]
        if args.select:
            cmd += ["-k", args.select]
        cmd += args.pytest_args
        proc = subprocess.run(cmd, env=env, cwd=REPO_ROOT)
        if proc.returncode != 0:
            print("benchmark suite failed; no report written", file=sys.stderr)
            return proc.returncode
        with open(raw_path) as handle:
            raw = json.load(handle)

    report = consolidate(raw)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"\nwrote {args.output}")
    for entry in report["benchmarks"]:
        eps = entry["events_per_sec"]
        print(f"  {entry['name']:<42} {entry['wall_seconds']*1000:>9.1f} ms"
              + (f"  {eps:>12,.0f} ev/s" if eps else "")
              + (f"  peak {entry['peak_swarm']:>9,.0f}"
                 if entry["peak_swarm"] else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
