#!/usr/bin/env python
"""Render a structured trace log (JSONL) into a Markdown run report.

Produce a log with either::

    PYTHONPATH=src python -m repro.experiments fig8a --trace run.jsonl

or programmatically::

    from repro.obs import tracing
    with tracing.capture(path="run.jsonl"):
        ...   # any code that creates Simulators

then render it::

    PYTHONPATH=src python scripts/run_report.py run.jsonl -o run.md
    PYTHONPATH=src python scripts/run_report.py run.jsonl          # stdout

The report contains per-layer event tables (sim / net / tcp / bittorrent
/ wp2p), the run's time span, and head/tail timeline excerpts per layer.
See docs/ARCHITECTURE.md ("Observability") for the full story.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.analysis.runreport import report_from_jsonl  # noqa: E402


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="Render a JSONL trace log into a Markdown run report."
    )
    parser.add_argument("log", help="path to the JSONL event log")
    parser.add_argument(
        "-o", "--output", default=None,
        help="write the Markdown report here (default: stdout)",
    )
    parser.add_argument(
        "--title", default=None, help="report title (default: derived from path)"
    )
    parser.add_argument(
        "--excerpt", type=int, default=12,
        help="events shown at the head/tail of each layer's timeline (default 12)",
    )
    args = parser.parse_args(argv)

    try:
        markdown = report_from_jsonl(
            args.log, title=args.title, excerpt=args.excerpt
        )
    except FileNotFoundError:
        parser.error(f"no such trace log: {args.log}")
    except ValueError as exc:
        parser.error(f"{args.log} is not a JSONL trace log: {exc}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"report written to {args.output}")
    else:
        print(markdown)


if __name__ == "__main__":
    main()
