#!/usr/bin/env python
"""Seeded fuzz driver for the invariant-audit harness (repro.audit).

Sweeps random seeds over randomized topologies — wireless TCP pairs and
small BitTorrent swarms with mixed wired/wireless/wP2P peers, bit errors
and mobility — with full invariant auditing installed.  Any violation is
a bug in the simulator (or in a checker): the sweep prints it and exits
non-zero, and CI runs a short sweep on every push.

Usage::

    PYTHONPATH=src python scripts/fuzz_audit.py --seeds 25
    PYTHONPATH=src python scripts/fuzz_audit.py --seeds 5 --duration 120 -v

The per-seed configuration is derived deterministically from
``--base-seed``, so a failure reproduces with the same arguments.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List

from repro import audit
from repro.audit import AuditViolation


def _fuzz_pair(rng: random.Random, seed: int, duration: float, verbose: bool) -> str:
    """One fixed<->mobile TCP transfer with randomized channel conditions."""
    from repro.experiments.base import run_transfer

    ber = rng.choice([0.0, 1e-6, 1e-5, 5e-5, 1e-4])
    bidirectional = rng.random() < 0.5
    rate = rng.choice([30_000.0, 60_000.0, 100_000.0])
    ap_queue = rng.choice([5, 20, 50])
    desc = (
        f"pair(ber={ber:g}, bidir={bidirectional}, rate={rate:g}, "
        f"ap_queue={ap_queue})"
    )
    if verbose:
        print(f"  {desc}", file=sys.stderr)
    run_transfer(
        seed, ber, bidirectional,
        duration=duration, rate=rate, ap_queue_packets=ap_queue,
    )
    return desc


def _fuzz_swarm(rng: random.Random, seed: int, duration: float, verbose: bool) -> str:
    """One randomized mini-swarm: wired seed(s), wireless leeches, optional
    wP2P client, bit errors and mobility."""
    from repro.bittorrent.swarm import SwarmScenario
    from repro.wp2p.client import WP2PClient, WP2PConfig

    file_size = rng.choice([256 * 1024, 512 * 1024, 1024 * 1024])
    piece_length = rng.choice([16_384, 32_768, 65_536])
    scenario = SwarmScenario(
        seed=seed, file_size=file_size, piece_length=piece_length
    )
    n_wired = rng.randint(1, 3)
    n_wireless = rng.randint(1, 2)
    use_wp2p = rng.random() < 0.5
    ber = rng.choice([0.0, 1e-5, 1e-4])
    mobile = rng.random() < 0.4

    scenario.add_wired_peer("seed0", complete=True, up_rate=200_000.0)
    for i in range(1, n_wired):
        scenario.add_wired_peer(f"wired{i}")
    for i in range(n_wireless):
        if use_wp2p:
            config = WP2PConfig(
                lihd_u_max=rng.choice([None, 12_000.0, 30_000.0])
            )
            handle = scenario.add_wireless_peer(
                f"mobile{i}", ber=ber, client_factory=WP2PClient, config=config
            )
        else:
            handle = scenario.add_wireless_peer(f"mobile{i}", ber=ber)
        if mobile:
            scenario.add_mobility(handle, interval=max(10.0, duration / 4))
    desc = (
        f"swarm(file={file_size // 1024}KiB, piece={piece_length}, "
        f"wired={n_wired}, wireless={n_wireless}, wp2p={use_wp2p}, "
        f"ber={ber:g}, mobile={mobile})"
    )
    if verbose:
        print(f"  {desc}", file=sys.stderr)
    scenario.start_all()
    scenario.run(until=duration)
    return desc


def _fuzz_chaos(rng: random.Random, seed: int, duration: float, verbose: bool) -> str:
    """One randomized mini-swarm with a chaos preset unleashed over it.

    The preset/intensity/horizon are drawn from the seed like every other
    fuzz parameter; the schedule itself is a pure function of that draw,
    so a violating run reproduces from its seed alone.
    """
    from repro.bittorrent.swarm import SwarmScenario
    from repro.chaos import PRESET_NAMES, ChaosSchedule, preset_schedule
    from repro.wp2p.client import WP2PClient

    preset = rng.choice(PRESET_NAMES)
    intensity = rng.choice([0.5, 1.0, 2.0, 3.0])
    horizon = duration * rng.choice([0.5, 0.8, 1.2])
    file_size = rng.choice([256 * 1024, 512 * 1024])
    use_wp2p = rng.random() < 0.5
    with_mobility = rng.random() < 0.6

    scenario = SwarmScenario(seed=seed, file_size=file_size, piece_length=32_768)
    scenario.add_wired_peer("seed0", complete=True, up_rate=200_000.0)
    scenario.add_wired_peer("wired1")
    if use_wp2p:
        handle = scenario.add_wireless_peer("mobile0", client_factory=WP2PClient)
    else:
        handle = scenario.add_wireless_peer("mobile0")
    if with_mobility:
        scenario.add_mobility(handle, interval=max(10.0, duration / 4))

    schedule: ChaosSchedule = preset_schedule(preset, intensity, horizon=horizon)
    scenario.add_chaos(schedule)
    desc = (
        f"chaos(preset={preset}, intensity={intensity:g}, horizon={horizon:g}, "
        f"file={file_size // 1024}KiB, wp2p={use_wp2p}, mobility={with_mobility}, "
        f"events={len(schedule)})"
    )
    if verbose:
        print(f"  {desc}", file=sys.stderr)
    scenario.start_all()
    scenario.run(until=duration)
    return desc


def _fuzz_coded(rng: random.Random, seed: int, duration: float, verbose: bool) -> str:
    """One randomized erasure-coded swarm, sometimes custody-seeded and
    sometimes churned, with the coded-bookkeeping checker armed.

    The audit recomputes group counts / decodable flags / decoded bytes
    from the raw bitfield each sweep, so any drift in the piece
    manager's incremental group accounting fails the run.
    """
    from repro.bittorrent.selection import make_selector
    from repro.bittorrent.swarm import SwarmScenario
    from repro.chaos import preset_schedule
    from repro.coding import coded_file_size

    n = rng.choice([3, 4, 6])
    k = rng.randint(max(1, n - 3), n - 1)
    source = rng.choice([256 * 1024, 512 * 1024])
    custody = rng.random() < 0.5
    churned = rng.random() < 0.4

    scenario = SwarmScenario(
        seed=seed,
        file_size=coded_file_size(source, k, n),
        piece_length=16_384,
        content=f"group:{k}/{n}",
    )
    if churned:
        scenario.add_chaos(
            preset_schedule("churn", intensity=1.5, horizon=duration * 0.8)
        )
    if custody:
        custodians = rng.randint(2, 3)
        for j in range(custodians):
            scenario.add_wired_peer(
                f"cust{j}",
                initial_pieces=scenario.custody_pieces(j, custodians),
                selector=make_selector("hold"),
                up_rate=100_000.0,
            )
    else:
        custodians = 0
        scenario.add_wired_peer("seed0", complete=True, up_rate=200_000.0)
    scenario.add_wired_peer("leech0")
    scenario.add_wireless_peer("mobile0")
    desc = (
        f"coded(k={k}, n={n}, source={source // 1024}KiB, "
        f"custody={custodians or False}, churned={churned})"
    )
    if verbose:
        print(f"  {desc}", file=sys.stderr)
    scenario.start_all()
    scenario.run(until=duration)
    return desc


def _fuzz_cdn(rng: random.Random, seed: int, duration: float, verbose: bool) -> str:
    """One randomized multi-swarm CDN: a catalog under Zipf demand with
    shared-uplink peers, an origin policy, and sometimes a flash crowd.

    The interesting surface is everything a single-torrent swarm never
    exercises: several clients per host multiplexing one token bucket and
    one wireless channel, per-asset listen ports, and origin activation/
    eviction churn — all under the full cross-layer audit.
    """
    from repro.cdn import CdnScenario

    assets = rng.randint(2, 5)
    size_kib = rng.choice([64, 128, 256])
    peers = rng.randint(3, 6)
    mobile_fraction = rng.choice([0.0, 0.34, 0.5])
    wp2p = rng.random() < 0.5
    alpha = rng.choice([0.8, 1.0, 1.3])
    rate = rng.choice([0.1, 0.2, 0.4])
    policy = rng.choice(["pin_top_k", "lru_evict", "replicate_on_miss"])
    capacity = rng.randint(max(1, assets - 2), assets)
    flash = rng.random() < 0.4
    demand: dict = {"kind": "zipf", "alpha": alpha, "rate": rate}
    if flash:
        demand["flash_crowd"] = {
            "at": duration * 0.3, "rank": rng.randint(1, assets),
            "size": rng.randint(2, 5), "width": 5.0,
        }
    sc = CdnScenario(
        seed=seed,
        catalog={"assets": assets, "size_kib": size_kib, "piece_kib": 16},
        demand=demand,
        origin={"policy": policy, "k": 1, "capacity": capacity},
        peers=peers,
        mobile_fraction=mobile_fraction,
        wp2p=wp2p,
        horizon=duration,
        handoff_interval=max(10.0, duration / 4),
    )
    desc = (
        f"cdn(assets={assets}, size={size_kib}KiB, peers={peers}, "
        f"mobile={mobile_fraction:g}, wp2p={wp2p}, zipf={alpha:g}@{rate:g}, "
        f"origin={policy}/{capacity}, flash={flash})"
    )
    if verbose:
        print(f"  {desc}", file=sys.stderr)
    sc.run()
    return desc


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=10, metavar="N",
                        help="number of randomized runs (default 10)")
    parser.add_argument("--base-seed", type=int, default=0, metavar="S",
                        help="first seed; run i uses S+i (default 0)")
    parser.add_argument("--duration", type=float, default=60.0, metavar="SEC",
                        help="simulated seconds per run (default 60)")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="print each run's drawn configuration")
    parser.add_argument("--chaos", action="store_true",
                        help="fuzz chaos-schedule runs only (seeded preset sweep)")
    parser.add_argument("--coded", action="store_true",
                        help="fuzz erasure-coded swarms only (repro.coding)")
    parser.add_argument("--cdn", action="store_true",
                        help="fuzz multi-swarm CDN scenarios only (repro.cdn)")
    args = parser.parse_args(argv)

    violations = 0
    for i in range(args.seeds):
        seed = args.base_seed + i
        # The drawn topology is a pure function of the seed, so a failing
        # run reproduces from its seed alone.
        rng = random.Random(seed)
        if args.chaos:
            fuzz = _fuzz_chaos
        elif args.coded:
            fuzz = _fuzz_coded
        elif args.cdn:
            fuzz = _fuzz_cdn
        else:
            draw = rng.random()
            if draw < 0.25:
                fuzz = _fuzz_pair
            elif draw < 0.55:
                fuzz = _fuzz_swarm
            elif draw < 0.75:
                fuzz = _fuzz_chaos
            elif draw < 0.9:
                fuzz = _fuzz_coded
            else:
                fuzz = _fuzz_cdn
        print(f"[{i + 1}/{args.seeds}] seed={seed} {fuzz.__name__}",
              file=sys.stderr)
        desc = "?"
        try:
            with audit.audited():
                desc = fuzz(rng, seed, args.duration, args.verbose)
        except AuditViolation as exc:
            violations += 1
            print(f"VIOLATION seed={seed} {desc}: {exc}", file=sys.stderr)
    if violations:
        print(f"{violations}/{args.seeds} runs violated invariants",
              file=sys.stderr)
        return 1
    print(f"{args.seeds} runs clean under full auditing", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
