#!/usr/bin/env python
"""Generate the Markdown API reference under docs/api/ from docstrings.

Uses only the standard library (``pkgutil`` + ``inspect``).  Output is
deterministic — modules, classes, and members are emitted in sorted
order and memory addresses are scrubbed — so the generated files are
committed and CI fails when they drift from the code
(``git diff --exit-code docs/api``).

Regenerate after changing any public docstring or signature::

    PYTHONPATH=src python scripts/generate_api_docs.py

Layout: one ``docs/api/repro.<subpackage>.md`` per subpackage (all of
its modules concatenated), plus ``docs/api/index.md`` linking them.
"""

from __future__ import annotations

import importlib
import inspect
import os
import pkgutil
import re
import shutil
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

OUT_DIR = os.path.join(ROOT, "docs", "api")

_ADDR_RE = re.compile(r" at 0x[0-9a-fA-F]+")


def _clean(text: str) -> str:
    """Scrub memory addresses so output is reproducible run-to-run."""
    return _ADDR_RE.sub("", text)


def _signature(obj) -> str:
    try:
        return _clean(str(inspect.signature(obj)))
    except (TypeError, ValueError):
        return "(...)"


def _doc(obj) -> str:
    return inspect.getdoc(obj) or ""


def _public_names(module) -> list:
    if hasattr(module, "__all__"):
        return sorted(module.__all__)
    return sorted(
        name for name in vars(module)
        if not name.startswith("_")
    )


def _defined_here(obj, module) -> bool:
    return getattr(obj, "__module__", None) == module.__name__


def _render_function(name: str, func, heading: str = "###") -> list:
    lines = [f"{heading} `{name}{_signature(func)}`", ""]
    doc = _doc(func)
    if doc:
        lines += [doc, ""]
    return lines


def _render_class(name: str, cls) -> list:
    bases = ", ".join(
        b.__name__ for b in cls.__bases__ if b is not object
    )
    title = f"### class `{name}{'(' + bases + ')' if bases else ''}`"
    lines = [title, ""]
    doc = _doc(cls)
    if doc:
        lines += [doc, ""]

    members = []
    for attr_name, attr in sorted(vars(cls).items()):
        if attr_name.startswith("_") and attr_name != "__init__":
            continue
        if isinstance(attr, property):
            members.append(("property", attr_name, attr))
        elif isinstance(attr, staticmethod):
            members.append(("staticmethod", attr_name, attr.__func__))
        elif isinstance(attr, classmethod):
            members.append(("classmethod", attr_name, attr.__func__))
        elif inspect.isfunction(attr):
            members.append(("method", attr_name, attr))

    for kind, attr_name, attr in members:
        if kind == "property":
            lines.append(f"- **`{attr_name}`** *(property)*")
            doc = _doc(attr)
        else:
            label = f" *({kind})*" if kind != "method" else ""
            lines.append(f"- **`{attr_name}{_signature(attr)}`**{label}")
            doc = _doc(attr)
        if doc:
            first = doc.strip().splitlines()[0]
            lines.append(f"  — {first}")
    if members:
        lines.append("")
    return lines


def _render_module(module) -> list:
    lines = [f"## Module `{module.__name__}`", ""]
    doc = _doc(module)
    if doc:
        lines += [doc, ""]

    classes, functions = [], []
    for name in _public_names(module):
        obj = getattr(module, name, None)
        if obj is None or not _defined_here(obj, module):
            continue
        if inspect.isclass(obj):
            classes.append((name, obj))
        elif inspect.isfunction(obj):
            functions.append((name, obj))

    for name, cls in classes:
        lines += _render_class(name, cls)
    for name, func in functions:
        lines += _render_function(name, func)
    return lines


def _iter_modules(package):
    """Yield the package module and all submodules, sorted by name."""
    yield package
    if not hasattr(package, "__path__"):
        return
    names = sorted(
        info.name
        for info in pkgutil.walk_packages(
            package.__path__, prefix=package.__name__ + "."
        )
        if not info.name.rsplit(".", 1)[-1].startswith("__")
    )
    for name in names:
        yield importlib.import_module(name)


def main() -> None:
    import repro

    subpackages = sorted(
        info.name
        for info in pkgutil.iter_modules(repro.__path__)
        if info.ispkg
    )

    if os.path.isdir(OUT_DIR):
        shutil.rmtree(OUT_DIR)
    os.makedirs(OUT_DIR)

    index = [
        "# `repro` API reference",
        "",
        "Generated from docstrings by `scripts/generate_api_docs.py` —",
        "do not edit by hand.  Regenerate with:",
        "",
        "```bash",
        "PYTHONPATH=src python scripts/generate_api_docs.py",
        "```",
        "",
        "| package | synopsis |",
        "|---|---|",
    ]

    for sub in subpackages:
        package = importlib.import_module(f"repro.{sub}")
        lines = [f"# Package `repro.{sub}`", ""]
        for module in _iter_modules(package):
            lines += _render_module(module)
        filename = f"repro.{sub}.md"
        with open(os.path.join(OUT_DIR, filename), "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines).rstrip() + "\n")
        synopsis = (_doc(package).splitlines() or [""])[0]
        index.append(f"| [`repro.{sub}`]({filename}) | {synopsis} |")
        print(f"wrote docs/api/{filename}")

    with open(os.path.join(OUT_DIR, "index.md"), "w", encoding="utf-8") as fh:
        fh.write("\n".join(index) + "\n")
    print("wrote docs/api/index.md")


if __name__ == "__main__":
    main()
